"""The columnar (vectorized) executor.

:class:`ColumnarExecutor` subclasses the row backend's
:class:`~repro.exec.runtime.PlanExecutor` and overrides exactly the
operator kernels — dispatch, spool caching, property validation policy,
metrics charging and tracing are inherited, so the two backends cannot
drift structurally.  Every override preserves the row backend's output
*row order* per partition, not just the multiset: stable index sorts
reproduce ``sorted`` permutations, concatenate-then-stable-sort
reproduces ``heapq.merge`` on sorted runs, dict insertion order
reproduces hash-aggregation group order, and probe order reproduces
join output order.  That is what makes the differential suite's
byte-identical ``canonical_bytes`` guarantee hold down to float
summation order.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ...plan.expressions import ColumnRef, Value
from ...plan.logical import GroupByMode, JoinKind
from ...plan.physical import (
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSort,
    PhysStreamAgg,
    PhysTopN,
)
from ...plan.properties import SortOrder
from ..runtime import ExecutionError, PlanExecutor
from .batch import ColumnBatch, ColumnarDataset
from .kernels import aggregate_groups, compile_select_kernel, compile_value_kernel


def _guarded(keys: List[Tuple[Value, ...]]) -> List[Tuple]:
    """NULL-safe comparison keys (NULLs after concrete values)."""
    return [tuple((v is None, v) for v in key) for key in keys]


class ColumnarExecutor(PlanExecutor):
    """Vectorized drop-in for :class:`PlanExecutor`.

    Same constructor, same ``execute(plan) -> outputs`` contract, same
    metrics counters; outputs are written as row
    :class:`~repro.exec.datasets.Dataset` objects so downstream result
    handling (oracle comparison, ``canonical_bytes``) is
    backend-agnostic.
    """

    backend_name = "columnar"
    dataset_cls = ColumnarDataset

    # -- leaf and row-local operators -------------------------------------

    def _extract(self, op: PhysExtract) -> List[ColumnBatch]:
        rows = self.cluster.read_file(op.path)
        self.metrics.rows_extracted += len(rows)
        n = self.cluster.machines
        names = op.schema.names
        columns = {c: [row[c] for row in rows] for c in names}
        # Round-robin placement: partition p takes rows p, p+n, p+2n...
        # — the slice ``[p::n]`` of each column, the same layout the
        # row backend's ``index % n`` scatter produces.
        return [
            ColumnBatch(
                {c: columns[c][p::n] for c in names},
                len(range(p, len(rows), n)),
            )
            for p in range(n)
        ]

    def _filter(self, op: PhysFilter, data: ColumnarDataset
                ) -> List[ColumnBatch]:
        kernel = compile_select_kernel(op.predicate)
        result: List[ColumnBatch] = []
        for batch in data.partitions:
            selected = kernel(batch.columns, batch.n_rows)
            self.metrics.rows_filtered += batch.n_rows - len(selected)
            if len(selected) == batch.n_rows:
                # Nothing dropped: share the input columns.
                result.append(ColumnBatch(batch.columns, batch.n_rows))
            else:
                result.append(batch.take(selected))
        return result

    def _project(self, op: PhysProject, data: ColumnarDataset
                 ) -> List[ColumnBatch]:
        # Plain column references pass through by reference (no copy);
        # computed expressions run their compiled kernel per batch.
        plan: List[Tuple[str, object]] = []
        for ne in op.exprs:
            if isinstance(ne.expr, ColumnRef):
                plan.append((ne.alias, ne.expr.name))
            else:
                plan.append((ne.alias, compile_value_kernel(ne.expr)))
        result: List[ColumnBatch] = []
        for batch in data.partitions:
            columns: Dict[str, List[Value]] = {}
            for alias, source in plan:
                if isinstance(source, str):
                    columns[alias] = batch.columns[source]
                else:
                    columns[alias] = source(batch.columns, batch.n_rows)
            result.append(ColumnBatch(columns, batch.n_rows))
        return result

    def _sort(self, op: PhysSort, data: ColumnarDataset) -> List[ColumnBatch]:
        self.metrics.rows_sorted += data.total_rows()
        cols = list(op.order.columns)
        result: List[ColumnBatch] = []
        for batch in data.partitions:
            keys = _guarded(batch.key_tuples(cols))
            order = sorted(range(batch.n_rows), key=keys.__getitem__)
            result.append(batch.take(order))
        return result

    def _top_n(self, op: PhysTopN, data: ColumnarDataset) -> List[ColumnBatch]:
        names = data.schema.names
        tiebreak = [c for c in names if c not in op.order_columns]
        key_cols = list(op.order_columns) + tiebreak
        if op.mode is not GroupByMode.LOCAL:
            occupied = [
                i for i, batch in enumerate(data.partitions) if batch.n_rows
            ]
            if len(occupied) > 1:
                raise ExecutionError(
                    f"TopN[{op.mode.value}]: input spread over partitions "
                    f"{occupied}"
                )
        result: List[ColumnBatch] = []
        for batch in data.partitions:
            keys = _guarded(batch.key_tuples(key_cols))
            order = sorted(range(batch.n_rows), key=keys.__getitem__)[: op.n]
            result.append(batch.take(order))
        return result

    # -- exchanges ---------------------------------------------------------

    def _scatter(self, data: ColumnarDataset, destinations,
                 merge_sort: SortOrder, who: str) -> List[ColumnBatch]:
        """Scatter rows to ``destinations(batch)`` per-row indices.

        Row order per destination is (source partition, source row) —
        identical to the row backend's append order.  Merge-sorted
        exchanges stable-sort each destination's concatenation, which
        reproduces ``heapq.merge`` over the per-source sorted runs
        (stable sort of concatenated sorted runs keeps equal keys in
        run order, and within a run in original order — exactly merge
        stability).
        """
        n = self.cluster.machines
        names = data.schema.names
        if merge_sort.is_sorted:
            self._check_sorted(data, merge_sort, who)
        gathers: List[List[Tuple[ColumnBatch, List[int]]]] = [
            [] for _ in range(n)
        ]
        for batch in data.partitions:
            dests = destinations(batch)
            index_lists: List[List[int]] = [[] for _ in range(n)]
            for i, dest in enumerate(dests):
                index_lists[dest].append(i)
            for dest in range(n):
                if index_lists[dest]:
                    gathers[dest].append((batch, index_lists[dest]))
        result: List[ColumnBatch] = []
        for dest in range(n):
            columns: Dict[str, List[Value]] = {name: [] for name in names}
            total = 0
            for batch, indices in gathers[dest]:
                for name in names:
                    col = batch.columns[name]
                    columns[name].extend([col[i] for i in indices])
                total += len(indices)
            out = ColumnBatch(columns, total)
            if merge_sort.is_sorted:
                keys = _guarded(out.key_tuples(list(merge_sort.columns)))
                order = sorted(range(total), key=keys.__getitem__)
                out = out.take(order)
            result.append(out)
        return result

    def _repartition(self, op: PhysRepartition, data: ColumnarDataset
                     ) -> List[ColumnBatch]:
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        cols = sorted(op.columns)

        def destinations(batch: ColumnBatch) -> List[int]:
            return [hash(key) % n for key in batch.key_tuples(cols)]

        return self._scatter(data, destinations, op.merge_sort,
                             "Repartition(merge)")

    def _range_repartition(self, op: PhysRangeRepartition,
                           data: ColumnarDataset) -> List[ColumnBatch]:
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        order_cols = list(op.order)
        distinct = sorted({
            tuple((v is None, v) for v in key)
            for batch in data.partitions
            for key in batch.key_tuples(order_cols)
        })
        boundaries = [
            distinct[(len(distinct) * (i + 1)) // n] for i in range(n - 1)
        ] if distinct else []

        def destinations(batch: ColumnBatch) -> List[int]:
            return [
                bisect.bisect_right(boundaries, key)
                for key in _guarded(batch.key_tuples(order_cols))
            ]

        return self._scatter(data, destinations, op.merge_sort,
                             "RangeRepartition(merge)")

    def _merge(self, op: PhysMerge, data: ColumnarDataset
               ) -> List[ColumnBatch]:
        n = self.cluster.machines
        self.metrics.rows_shuffled += data.total_rows()
        self.metrics.charge_exchange(data.total_rows())
        names = data.schema.names
        if op.merge_sort.is_sorted:
            self._check_sorted(data, op.merge_sort, "Merge")
        columns: Dict[str, List[Value]] = {name: [] for name in names}
        total = 0
        for batch in data.partitions:
            for name in names:
                columns[name].extend(batch.columns[name])
            total += batch.n_rows
        merged = ColumnBatch(columns, total)
        if op.merge_sort.is_sorted:
            keys = _guarded(merged.key_tuples(list(op.merge_sort.columns)))
            order = sorted(range(total), key=keys.__getitem__)
            merged = merged.take(order)
        result = [ColumnBatch.empty(names) for _ in range(n)]
        result[0] = merged
        return result

    # -- aggregation -------------------------------------------------------

    def _agg_batch(self, keys, aggregates, batch: ColumnBatch,
                   runs: bool) -> ColumnBatch:
        """Group ``batch`` and fold every aggregate.

        ``runs=True`` groups consecutive equal keys (stream aggregation
        over sorted input); ``runs=False`` groups by hash with groups
        emitted in first-occurrence order — the dict insertion order the
        row backend's group table produces.
        """
        key_cols = list(keys)
        key_list = batch.key_tuples(key_cols)
        group_keys: List[Tuple[Value, ...]] = []
        groups: List[List[int]] = []
        if runs:
            for i, key in enumerate(key_list):
                if not groups or key != group_keys[-1]:
                    group_keys.append(key)
                    groups.append([i])
                else:
                    groups[-1].append(i)
        else:
            slot_of: Dict[Tuple[Value, ...], int] = {}
            for i, key in enumerate(key_list):
                slot = slot_of.get(key)
                if slot is None:
                    slot_of[key] = len(groups)
                    group_keys.append(key)
                    groups.append([i])
                else:
                    groups[slot].append(i)
        columns: Dict[str, List[Value]] = {}
        for pos, name in enumerate(key_cols):
            columns[name] = [key[pos] for key in group_keys]
        for agg in aggregates:
            values = None
            if agg.arg is not None:
                values = compile_value_kernel(agg.arg)(
                    batch.columns, batch.n_rows
                )
            columns[agg.alias] = aggregate_groups(agg, values, groups)
        return ColumnBatch(columns, len(groups))

    def _stream_agg(self, op: PhysStreamAgg, node: PhysicalPlan,
                    data: ColumnarDataset) -> List[ColumnBatch]:
        self._check_sorted(data, SortOrder(op.key_order), "StreamAgg")
        if op.mode is not GroupByMode.LOCAL:
            self._check_grouping_colocation(data, op.key_order, "StreamAgg")
        return [
            self._agg_batch(op.key_order, op.aggregates, batch, runs=True)
            for batch in data.partitions
        ]

    def _hash_agg(self, op: PhysHashAgg, node: PhysicalPlan,
                  data: ColumnarDataset) -> List[ColumnBatch]:
        if op.mode is not GroupByMode.LOCAL:
            self._check_grouping_colocation(data, op.keys, "HashAgg")
        return [
            self._agg_batch(op.keys, op.aggregates, batch, runs=False)
            for batch in data.partitions
        ]

    # -- joins -------------------------------------------------------------

    def _join_output(self, node: PhysicalPlan, left_batch: ColumnBatch,
                     right_batch: ColumnBatch,
                     pairs: List[Tuple[int, object]]) -> ColumnBatch:
        """Materialize ``(left index, right index)`` pairs.

        A right index of ``None`` pads with NULLs (LEFT join).  On
        column-name collisions the right side wins — the
        ``{**left, **right}`` rule of the row backend.
        """
        left_idx = [pair[0] for pair in pairs]
        right_idx = [pair[1] for pair in pairs]
        right_names = set(node.children[1].schema.names)
        columns: Dict[str, List[Value]] = {}
        for name in node.schema.names:
            if name in right_names:
                col = right_batch.columns[name]
                columns[name] = [
                    col[j] if j is not None else None for j in right_idx
                ]
            else:
                col = left_batch.columns[name]
                columns[name] = [col[i] for i in left_idx]
        return ColumnBatch(columns, len(pairs))

    def _probe_pairs(self, build_batch: ColumnBatch,
                     probe_batch: ColumnBatch, build_keys, probe_keys,
                     pad: bool) -> List[Tuple[int, object]]:
        """Hash-probe in row order; returns (probe, build) index pairs."""
        table: Dict[Tuple[Value, ...], List[int]] = {}
        for j, key in enumerate(build_batch.key_tuples(list(build_keys))):
            table.setdefault(key, []).append(j)
        pairs: List[Tuple[int, object]] = []
        for i, key in enumerate(probe_batch.key_tuples(list(probe_keys))):
            matches = () if None in key else table.get(key, ())
            if matches:
                for j in matches:
                    pairs.append((i, j))
            elif pad:
                pairs.append((i, None))
        return pairs

    def _hash_join(self, op: PhysHashJoin, node: PhysicalPlan,
                   inputs: List[ColumnarDataset]) -> List[ColumnBatch]:
        left, right = inputs
        self._check_join_colocation(
            node, left, right, op.left_keys, op.right_keys, "HashJoin"
        )
        pad = op.kind is JoinKind.LEFT
        result: List[ColumnBatch] = []
        for left_batch, right_batch in zip(left.partitions, right.partitions):
            pairs = self._probe_pairs(
                right_batch, left_batch, op.right_keys, op.left_keys, pad
            )
            result.append(
                self._join_output(node, left_batch, right_batch, pairs)
            )
        return result

    def _broadcast_join(self, op, node: PhysicalPlan,
                        inputs: List[ColumnarDataset]) -> List[ColumnBatch]:
        left, right = inputs
        names = node.children[1].schema.names
        build_columns: Dict[str, List[Value]] = {name: [] for name in names}
        total = 0
        for batch in right.partitions:
            for name in names:
                build_columns[name].extend(batch.columns[name])
            total += batch.n_rows
        build = ColumnBatch(build_columns, total)
        self.metrics.rows_broadcast += total * left.n_partitions
        self.metrics.charge_exchange(total * left.n_partitions)
        pad = op.kind is JoinKind.LEFT
        result: List[ColumnBatch] = []
        for left_batch in left.partitions:
            pairs = self._probe_pairs(
                build, left_batch, op.right_keys, op.left_keys, pad
            )
            result.append(self._join_output(node, left_batch, build, pairs))
        return result

    def _merge_join(self, op: PhysMergeJoin, node: PhysicalPlan,
                    inputs: List[ColumnarDataset]) -> List[ColumnBatch]:
        left, right = inputs
        self._check_sorted(left, SortOrder(op.left_keys), "MergeJoin left")
        self._check_sorted(right, SortOrder(op.right_keys), "MergeJoin right")
        self._check_join_colocation(
            node, left, right, op.left_keys, op.right_keys, "MergeJoin"
        )
        pad = op.kind is JoinKind.LEFT
        result: List[ColumnBatch] = []
        for left_batch, right_batch in zip(left.partitions, right.partitions):
            left_keys = left_batch.key_tuples(list(op.left_keys))
            right_keys = right_batch.key_tuples(list(op.right_keys))
            left_guarded = _guarded(left_keys)
            right_guarded = _guarded(right_keys)
            pairs: List[Tuple[int, object]] = []
            i = j = 0
            n_left, n_right = left_batch.n_rows, right_batch.n_rows
            while i < n_left:
                if j >= n_right:
                    if pad:
                        pairs.append((i, None))
                    i += 1
                    continue
                if left_guarded[i] < right_guarded[j] or None in left_keys[i]:
                    # NULL join keys never match anything.
                    if pad:
                        pairs.append((i, None))
                    i += 1
                elif left_guarded[i] > right_guarded[j]:
                    j += 1
                else:
                    i_end = i
                    while i_end < n_left and left_keys[i_end] == left_keys[i]:
                        i_end += 1
                    j_end = j
                    while j_end < n_right and right_keys[j_end] == right_keys[j]:
                        j_end += 1
                    for li in range(i, i_end):
                        for rj in range(j, j_end):
                            pairs.append((li, rj))
                    i, j = i_end, j_end
            result.append(
                self._join_output(node, left_batch, right_batch, pairs)
            )
        return result

    # -- outputs and plumbing ----------------------------------------------

    def _empty_partitions(self) -> List[ColumnBatch]:
        return [ColumnBatch.empty() for _ in range(self.cluster.machines)]

    def _output(self, op: PhysOutput, data: ColumnarDataset
                ) -> List[ColumnBatch]:
        self.metrics.rows_output += data.total_rows()
        # Result files are always row datasets, whichever backend ran.
        self.cluster.write_output(op.path, data.to_row_dataset())
        return self._empty_partitions()

    def _union(self, inputs: List[ColumnarDataset]) -> List[ColumnBatch]:
        n = max(d.n_partitions for d in inputs)
        names = inputs[0].schema.names
        slots: List[List[ColumnBatch]] = [[] for _ in range(n)]
        for data in inputs:
            for idx, batch in enumerate(data.partitions):
                slots[idx % n].append(batch)
        result: List[ColumnBatch] = []
        for batches in slots:
            columns: Dict[str, List[Value]] = {name: [] for name in names}
            total = 0
            for batch in batches:
                for name in names:
                    columns[name].extend(batch.columns[name])
                total += batch.n_rows
            result.append(ColumnBatch(columns, total))
        return result

    # -- validation helpers ------------------------------------------------

    def _check_sorted(self, data: ColumnarDataset, order: SortOrder,
                      who: str) -> None:
        if not self.validate or not order.is_sorted:
            return
        cols = list(order.columns)
        for idx, batch in enumerate(data.partitions):
            previous = None
            for key_values in batch.key_tuples(cols):
                key = tuple((v is None, v) for v in key_values)
                if previous is not None and key < previous:
                    raise ExecutionError(
                        f"{who}: input partition {idx} not sorted on {order}"
                    )
                previous = key

    def _check_grouping_colocation(self, data: ColumnarDataset, keys,
                                   who: str) -> None:
        if not self.validate:
            return
        if not keys:
            occupied = [
                i for i, batch in enumerate(data.partitions) if batch.n_rows
            ]
            if len(occupied) > 1:
                raise ExecutionError(
                    f"{who}: scalar aggregate input spread over {occupied}"
                )
            return
        placement: Dict[Tuple[Value, ...], int] = {}
        key_cols = list(keys)
        for idx, batch in enumerate(data.partitions):
            for key in batch.key_tuples(key_cols):
                prev = placement.setdefault(key, idx)
                if prev != idx:
                    raise ExecutionError(
                        f"{who}: group {key} split across partitions "
                        f"{prev} and {idx}"
                    )

    def _check_join_colocation(self, node: PhysicalPlan,
                               left: ColumnarDataset, right: ColumnarDataset,
                               left_keys, right_keys, name: str) -> None:
        if not self.validate:
            return
        if left.n_partitions != right.n_partitions:
            raise ExecutionError(f"{name}: partition counts differ")
        placement: Dict[Tuple[Value, ...], int] = {}
        for idx, batch in enumerate(left.partitions):
            for key in batch.key_tuples(list(left_keys)):
                prev = placement.setdefault(key, idx)
                if prev != idx:
                    raise ExecutionError(
                        f"{name}: left key {key} split across partitions"
                    )
        for idx, batch in enumerate(right.partitions):
            for key in batch.key_tuples(list(right_keys)):
                prev = placement.get(key)
                if prev is not None and prev != idx:
                    raise ExecutionError(
                        f"{name}: key {key} not co-located "
                        f"(left partition {prev}, right partition {idx})"
                    )
