"""Compiled vectorized kernels for the columnar backend.

Scalar expressions are compiled once per distinct ``Expr`` into a tight
Python loop over column lists: every sub-expression becomes one
assignment statement and AND/OR become nested ``if`` blocks.  This
preserves the *exact* row-backend semantics —

* two-valued NULL comparisons (``NULL = x`` is ``False``),
* NULL-propagating arithmetic (``NULL + x`` is ``None``),
* truthiness coercion and genuine short-circuit for AND/OR/NOT (the
  right operand of ``b <> 0 AND a / b > 2`` is never evaluated on rows
  the left operand rejects, exactly as in ``Expr.evaluate``) —

while eliminating the per-row interpreter overhead (recursive
``evaluate`` calls, per-node dispatch, row-dict lookups).  Compiled
kernels are cached module-wide keyed by the frozen expression
dataclasses, so repeated plans (e.g. through the plan-cache service)
pay compilation once per distinct expression.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ...plan.expressions import (
    Aggregate,
    AggFunc,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    NotExpr,
    Value,
)

#: ``kernel(columns, n_rows) -> [value, ...]`` — one result per row.
ValueKernel = Callable[[Dict[str, List[Value]], int], List[Value]]
#: ``kernel(columns, n_rows) -> [index, ...]`` — selection vector of the
#: rows where the predicate is truthy, in row order.
SelectKernel = Callable[[Dict[str, List[Value]], int], List[int]]

_PY_OPS = {
    BinaryOp.ADD: "+",
    BinaryOp.SUB: "-",
    BinaryOp.MUL: "*",
    BinaryOp.DIV: "/",
    BinaryOp.EQ: "==",
    BinaryOp.NE: "!=",
    BinaryOp.LT: "<",
    BinaryOp.LE: "<=",
    BinaryOp.GT: ">",
    BinaryOp.GE: ">=",
}


class _Emitter:
    """Collects the loop-body statements of one kernel."""

    def __init__(self):
        self.lines: List[str] = []
        self._temps = 0
        #: column name -> local variable holding the column list
        self.columns: Dict[str, str] = {}

    def temp(self) -> str:
        self._temps += 1
        return f"v{self._temps}"

    def column_var(self, name: str) -> str:
        var = self.columns.get(name)
        if var is None:
            var = f"c{len(self.columns)}"
            self.columns[name] = var
        return var

    def emit(self, indent: int, text: str) -> None:
        # Loop-body statements sit two levels deep in the kernel source.
        self.lines.append("        " + "    " * indent + text)


def _gen(expr: Expr, em: _Emitter, indent: int) -> str:
    """Emit statements computing ``expr`` for row ``i``.

    Returns the source fragment holding the result — a temp variable,
    or an inline constant for literals.
    """
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        out = em.temp()
        em.emit(indent, f"{out} = {em.column_var(expr.name)}[i]")
        return out
    if isinstance(expr, NotExpr):
        operand = _gen(expr.operand, em, indent)
        out = em.temp()
        em.emit(indent, f"{out} = False if {operand} else True")
        return out
    if isinstance(expr, BinaryExpr):
        op = expr.op
        if op is BinaryOp.AND:
            out = em.temp()
            left = _gen(expr.left, em, indent)
            em.emit(indent, f"if {left}:")
            right = _gen(expr.right, em, indent + 1)
            em.emit(indent + 1, f"{out} = True if {right} else False")
            em.emit(indent, "else:")
            em.emit(indent + 1, f"{out} = False")
            return out
        if op is BinaryOp.OR:
            out = em.temp()
            left = _gen(expr.left, em, indent)
            em.emit(indent, f"if {left}:")
            em.emit(indent + 1, f"{out} = True")
            em.emit(indent, "else:")
            right = _gen(expr.right, em, indent + 1)
            em.emit(indent + 1, f"{out} = True if {right} else False")
            return out
        left = _gen(expr.left, em, indent)
        right = _gen(expr.right, em, indent)
        out = em.temp()
        none_result = "False" if op.is_comparison else "None"
        # NULL checks are folded away for non-NULL literal operands
        # (also avoids `3 is None`, which CPython flags).
        checks = []
        if not (isinstance(expr.left, Literal)
                and expr.left.value is not None):
            checks.append(f"{left} is None")
        if not (isinstance(expr.right, Literal)
                and expr.right.value is not None):
            checks.append(f"{right} is None")
        if checks:
            em.emit(indent, f"if {' or '.join(checks)}:")
            em.emit(indent + 1, f"{out} = {none_result}")
            em.emit(indent, "else:")
            em.emit(indent + 1, f"{out} = {left} {_PY_OPS[op]} {right}")
        else:
            em.emit(indent, f"{out} = {left} {_PY_OPS[op]} {right}")
        return out
    raise TypeError(f"no columnar kernel for {type(expr).__name__}")


def _compile(expr: Expr, tail: Callable[[str], List[str]],
             name: str) -> Callable:
    em = _Emitter()
    result = _gen(expr, em, 0)
    lines = [f"def {name}(columns, n):"]
    for col_name, var in em.columns.items():
        lines.append(f"    {var} = columns[{col_name!r}]")
    lines.append("    out = []")
    lines.append("    append = out.append")
    lines.append("    for i in range(n):")
    lines.extend(em.lines)
    lines.extend(tail(result))
    lines.append("    return out")
    source = "\n".join(lines)
    namespace = {"range": range}
    exec(compile(source, f"<columnar:{name}>", "exec"), namespace)
    kernel = namespace[name]
    kernel.__source__ = source  # introspectable for tests and debugging
    return kernel


_VALUE_KERNELS: Dict[Expr, ValueKernel] = {}
_SELECT_KERNELS: Dict[Expr, SelectKernel] = {}


def compile_value_kernel(expr: Expr) -> ValueKernel:
    """Kernel computing ``expr`` for every row of a batch."""
    kernel = _VALUE_KERNELS.get(expr)
    if kernel is None:
        if isinstance(expr, Literal):
            value = expr.value

            def kernel(columns, n, _value=value):
                return [_value] * n
        else:
            kernel = _compile(
                expr, lambda result: [f"        append({result})"], "_value"
            )
        _VALUE_KERNELS[expr] = kernel
    return kernel


def compile_select_kernel(expr: Expr) -> SelectKernel:
    """Kernel computing the selection vector of predicate ``expr``."""
    kernel = _SELECT_KERNELS.get(expr)
    if kernel is None:
        kernel = _compile(
            expr,
            lambda result: [
                f"        if {result}:",
                "            append(i)",
            ],
            "_select",
        )
        _SELECT_KERNELS[expr] = kernel
    return kernel


# -- aggregation folds ------------------------------------------------------


def aggregate_groups(agg: Aggregate, values: Optional[List[Value]],
                     groups: List[List[int]]) -> List[Value]:
    """Finalized value of ``agg`` for each group of row indices.

    ``values`` is the aggregate argument evaluated for *every* row of
    the batch (``None`` for ``COUNT(*)``).  Folds run left-to-right in
    row order within each group, matching the row backend's
    ``accumulate`` chain exactly — float sums depend on it.
    """
    func = agg.func
    if func is AggFunc.COUNT:
        if agg.arg is None:
            return [len(indices) for indices in groups]
        return [
            sum(1 for i in indices if values[i] is not None)
            for indices in groups
        ]
    out: List[Value] = []
    if func is AggFunc.SUM:
        for indices in groups:
            state = None
            for i in indices:
                v = values[i]
                if v is not None:
                    state = v if state is None else state + v
            out.append(state)
    elif func is AggFunc.MIN:
        for indices in groups:
            state = None
            for i in indices:
                v = values[i]
                if v is not None:
                    state = v if state is None else min(state, v)
            out.append(state)
    elif func is AggFunc.MAX:
        for indices in groups:
            state = None
            for i in indices:
                v = values[i]
                if v is not None:
                    state = v if state is None else max(state, v)
            out.append(state)
    elif func is AggFunc.AVG:
        for indices in groups:
            total = None
            count = 0
            for i in indices:
                v = values[i]
                if v is not None:
                    total = v if total is None else total + v
                    count += 1
            out.append(None if total is None else total / count)
    else:  # pragma: no cover - exhaustive over AggFunc
        raise TypeError(f"no columnar fold for {func}")
    return out
