"""Columnar partitions: one value list per column instead of row dicts.

The row backend's unit of data is a partition = ``List[Row]`` with one
dict per row; here a partition is a :class:`ColumnBatch` — a mapping of
column name to a plain Python list of values, plus the row count.  The
batch layout is what makes vectorized kernels possible: an operator
touches whole columns at C speed (``zip``, slicing, list
comprehensions, compiled expression loops) instead of doing a dict
lookup per row per column.

:class:`ColumnarDataset` is the columnar counterpart of
:class:`~repro.exec.datasets.Dataset` and is deliberately
duck-compatible with it (``schema`` / ``partitions`` / ``props`` /
``n_partitions`` / ``total_rows`` / ``validate_layout``), so the shared
executor machinery in :mod:`repro.exec.runtime` works on either without
branching.  Likewise ``len(batch)`` is the batch's row count, matching
``len(partition)`` of a row-list partition for the metrics helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ...plan.columns import Schema
from ...plan.expressions import Row, Value
from ...plan.properties import PartitionKind, PhysicalProps
from ..datasets import Dataset


class ColumnBatch:
    """One partition in columnar layout.

    Column lists may be *shared* between batches — projection passes
    unmodified columns through by reference, filters that keep every row
    reuse the input columns — so kernels must never mutate a column in
    place; they always build fresh lists.
    """

    __slots__ = ("columns", "n_rows")

    def __init__(self, columns: Dict[str, List[Value]],
                 n_rows: Optional[int] = None):
        if n_rows is None:
            n_rows = len(next(iter(columns.values()))) if columns else 0
        self.columns = columns
        self.n_rows = n_rows

    def __len__(self) -> int:
        # Row count, like ``len()`` of a row-list partition, so the
        # executor's metrics helpers work on either layout.
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnBatch({list(self.columns)}, n_rows={self.n_rows})"
        )

    @classmethod
    def empty(cls, names: Iterable[str] = ()) -> "ColumnBatch":
        return cls({name: [] for name in names}, 0)

    @classmethod
    def from_rows(cls, names: Iterable[str], rows: List[Row]) -> "ColumnBatch":
        return cls(
            {name: [row[name] for row in rows] for name in names},
            len(rows),
        )

    def to_rows(self) -> List[Row]:
        names = list(self.columns)
        if not names:
            return [{} for _ in range(self.n_rows)]
        cols = [self.columns[name] for name in names]
        return [dict(zip(names, values)) for values in zip(*cols)]

    def take(self, indices: List[int]) -> "ColumnBatch":
        """Gather the given row indices into a new batch."""
        return ColumnBatch(
            {
                name: [col[i] for i in indices]
                for name, col in self.columns.items()
            },
            len(indices),
        )

    def key_tuples(self, names) -> List[Tuple[Value, ...]]:
        """One tuple per row over ``names`` (built at C speed by zip).

        The tuples are exactly what the row backend builds per row with
        ``tuple(row[c] for c in names)``, so hashes, dict grouping and
        comparisons agree between backends.
        """
        if not self.n_rows:
            return []
        if not names:
            return [()] * self.n_rows
        return list(zip(*(self.columns[name] for name in names)))


def _guarded(key: Tuple[Value, ...]) -> Tuple:
    return tuple((v is None, v) for v in key)


@dataclass
class ColumnarDataset:
    """A partitioned columnar rowset with claimed physical properties.

    Duck-compatible with :class:`~repro.exec.datasets.Dataset`;
    ``validate_layout`` performs the same checks (and produces the same
    violation messages) over the columnar layout.
    """

    schema: Schema
    partitions: List[ColumnBatch]
    props: PhysicalProps = field(default_factory=PhysicalProps)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def total_rows(self) -> int:
        return sum(batch.n_rows for batch in self.partitions)

    def to_row_dataset(self) -> Dataset:
        return Dataset(
            self.schema,
            [batch.to_rows() for batch in self.partitions],
            self.props,
        )

    def validate_layout(self) -> Optional[str]:
        """Check the data matches the claimed properties.

        Mirrors ``Dataset.validate_layout`` over the columnar layout.
        """
        part = self.props.partitioning
        if part.kind is PartitionKind.SERIAL:
            occupied = [
                i for i, batch in enumerate(self.partitions) if batch.n_rows
            ]
            if len(occupied) > 1:
                return f"serial claim violated: partitions {occupied} non-empty"
        elif part.kind is PartitionKind.HASH:
            cols = sorted(part.columns)
            seen: Dict[Tuple[Value, ...], int] = {}
            for idx, batch in enumerate(self.partitions):
                for key in batch.key_tuples(cols):
                    prev = seen.setdefault(key, idx)
                    if prev != idx:
                        return (
                            f"hash({','.join(cols)}) claim "
                            f"violated: key {key} in partitions {prev} and {idx}"
                        )
        elif part.kind is PartitionKind.RANGE:
            previous_max = None
            for idx, batch in enumerate(self.partitions):
                if not batch.n_rows:
                    continue
                keys = [
                    _guarded(key) for key in batch.key_tuples(part.order)
                ]
                low, high = min(keys), max(keys)
                if previous_max is not None and low <= previous_max:
                    return (
                        f"range({','.join(part.order)}) claim violated: "
                        f"partition {idx} starts at {low} but an earlier "
                        f"partition reaches {previous_max}"
                    )
                previous_max = high
        order = self.props.sort_order
        if order.is_sorted:
            for idx, batch in enumerate(self.partitions):
                previous = None
                for key_values in batch.key_tuples(order.columns):
                    key = _guarded(key_values)
                    if previous is not None and key < previous:
                        return (
                            f"sort {order} claim violated in partition {idx}: "
                            f"{key} after {previous}"
                        )
                    previous = key
        return None


def from_row_dataset(dataset: Dataset) -> ColumnarDataset:
    """Convert a row dataset to columnar layout (row order preserved)."""
    names = dataset.schema.names
    return ColumnarDataset(
        dataset.schema,
        [ColumnBatch.from_rows(names, part) for part in dataset.partitions],
        dataset.props,
    )
