"""Vectorized columnar execution backend.

A partition is a :class:`ColumnBatch` (one value list per column)
instead of a list of row dicts, and every physical operator runs as a
vectorized kernel: filters compile predicates into selection-vector
loops, projections evaluate whole columns (passing plain column
references through by reference), aggregations fold group index lists,
joins gather index pairs.  :class:`ColumnarExecutor` is a drop-in for
the row backend's ``PlanExecutor`` — selected via
``execute_script(..., backend="columnar")``, ``repro run --backend
columnar`` or the backend registry in :mod:`repro.exec.backend` — and
produces byte-identical outputs (the differential suite proves equal
``canonical_bytes`` across the whole corpus).
"""

from .batch import ColumnBatch, ColumnarDataset, from_row_dataset
from .executor import ColumnarExecutor
from .kernels import (
    aggregate_groups,
    compile_select_kernel,
    compile_value_kernel,
)

__all__ = [
    "ColumnBatch",
    "ColumnarDataset",
    "ColumnarExecutor",
    "aggregate_groups",
    "compile_select_kernel",
    "compile_value_kernel",
    "from_row_dataset",
]
