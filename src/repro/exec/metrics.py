"""Execution metrics collected by the cluster simulator.

These are the measured counterparts of the cost model's components:
rows shipped through exchanges, rows spooled, rows processed per
operator, and the maximum per-partition row count (a direct skew
indicator).  Tests use them to check that the optimizer's choices have
the claimed effect (e.g. the CSE plan extracts the input once and ships
fewer rows than the conventional plan).

The task scheduler (``repro.exec.scheduler``) additionally records one
:class:`VertexStats` per stage-graph vertex: launches, per-partition
tasks, retries, rows in/out, wall time, and the estimated-vs-actual
cardinality ratio.  Everything :meth:`ExecutionMetrics.summary` renders
is independent of task completion order — counters are merged in vertex
order at the end of the run and wall-clock values are excluded — so the
same plan, data and failure seed always produce the same summary text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class VertexStats:
    """Runtime statistics of one scheduled vertex."""

    vertex: str
    #: Times the vertex was launched (spool producers must stay at 1).
    launches: int = 0
    #: Tasks the launch expanded into (partition count if partitionwise).
    tasks: int = 0
    #: Failed task attempts that were retried.
    retries: int = 0
    rows_in: int = 0
    rows_out: int = 0
    #: Partition batches the vertex's tasks processed (summed over the
    #: per-task scratches; ``repro run --explain-exec`` prints these).
    batches: int = 0
    #: Optimizer's estimated output cardinality of the fragment root.
    estimated_rows: float = 0.0
    #: Measured wall time (seconds) summed over the vertex's tasks.
    wall_seconds: float = 0.0
    #: The vertex's contribution to the simulated makespan model
    #: (deterministic, unlike ``wall_seconds``); feeds the hotspot
    #: report of :mod:`repro.obs.report`.
    simulated_makespan: float = 0.0
    #: Output paths this vertex's result feeds (from the stage graph's
    #: attribution pass).  In a merged batch, more than one distinct
    #: ``<label>/`` prefix here marks cross-script shared work.
    serves: Tuple[str, ...] = ()
    #: Measured output rows of every plan fragment (memo group id) this
    #: vertex's tasks executed, summed over per-partition task slices.
    #: The cardinality-feedback loop (``repro.stats``) reads these to
    #: compare interior fragments — not just vertex boundaries — against
    #: the optimizer's estimates.
    fragment_rows: Dict[int, int] = field(default_factory=dict)

    @property
    def estimate_missing(self) -> bool:
        """True when the optimizer recorded no estimate for this vertex.

        A zero/absent estimate (plans built outside the optimizer, or
        operators the coster predicts empty) is *not* an estimation
        error of ``rows_out``× — there is simply nothing to compare
        against.  Renderers show ``est=?`` / ``n/a`` instead of a ratio.
        """
        return self.estimated_rows <= 0

    @property
    def cardinality_ratio(self) -> float:
        """actual / estimated output rows, guarded to stay finite.

        When :attr:`estimate_missing` is set the ratio is reported as a
        neutral ``1.0`` — check the flag before trusting it; renderers
        and the q-error report do.
        """
        if self.estimated_rows > 0:
            return self.rows_out / self.estimated_rows
        return 1.0


@dataclass
class ExecutionMetrics:
    """Counters accumulated over one plan execution."""

    rows_extracted: int = 0
    rows_shuffled: int = 0
    rows_broadcast: int = 0
    rows_spooled: int = 0
    spool_reads: int = 0
    rows_output: int = 0
    rows_sorted: int = 0
    #: Rows dropped by Filter operators (rows in minus rows surviving).
    rows_filtered: int = 0
    operator_invocations: Dict[str, int] = field(default_factory=dict)
    #: Partition batches materialized at operator boundaries, keyed by
    #: the backend that processed them ("row" row-lists, "columnar"
    #: column batches).  Both backends count at the same point
    #: (``_finish``), so the totals are directly comparable.
    batches_processed: Dict[str, int] = field(default_factory=dict)
    max_partition_rows: int = 0
    #: Simulated wall-clock model: per operator execution, the slowest
    #: partition's work (rows × a per-operator weight) plus the full
    #: volume of exchanges — a critical-path approximation of the job's
    #: makespan.  Used to validate the optimizer's cost model ordering
    #: against "measured" runtimes.
    simulated_makespan: float = 0.0
    #: Per-vertex scheduler statistics, keyed by vertex name (empty for
    #: the sequential executor).
    vertices: Dict[str, VertexStats] = field(default_factory=dict)
    #: Measured output rows per plan fragment, keyed by memo group id.
    #: Each fragment is counted **once** regardless of how many times a
    #: conventional plan re-executes it (the executors deduplicate by
    #: group id; the scheduler attributes each fragment to the first
    #: vertex that ran it, in deterministic vertex order).  This is the
    #: measured counterpart of ``Stats.rows`` and the raw input of the
    #: cardinality-feedback loop (``repro.stats.capture``).
    fragment_rows: Dict[int, int] = field(default_factory=dict)
    #: Total failed task attempts that were retried (scheduler only).
    task_retries: int = 0
    #: Worker processes lost mid-run — SIGKILL, OOM, crash — and
    #: replaced by the process runtime (always 0 on the thread
    #: scheduler and the sequential executors).
    worker_deaths: int = 0

    #: Per-row weights of the makespan model, mirroring the cost model's
    #: shape (exchanges pay volume, compute pays the slowest partition).
    COMPUTE_WEIGHT = 1.0
    EXCHANGE_WEIGHT = 2.0
    SPOOL_WEIGHT = 1.0

    def charge_compute(self, partitions) -> None:
        slowest = max((len(p) for p in partitions), default=0)
        self.simulated_makespan += slowest * self.COMPUTE_WEIGHT

    def charge_exchange(self, total_rows: int) -> None:
        self.simulated_makespan += total_rows * self.EXCHANGE_WEIGHT

    def charge_spool(self, total_rows: int) -> None:
        self.simulated_makespan += total_rows * self.SPOOL_WEIGHT

    def note_operator(self, name: str) -> None:
        self.operator_invocations[name] = self.operator_invocations.get(name, 0) + 1

    def note_batches(self, backend: str, count: int) -> None:
        """Count ``count`` partition batches processed by ``backend``."""
        self.batches_processed[backend] = (
            self.batches_processed.get(backend, 0) + count
        )

    def total_batches(self) -> int:
        return sum(self.batches_processed.values())

    def rows_processed(self) -> int:
        """Total rows flowing through the run's materialization points.

        Extraction, exchanges (shuffle/broadcast), spool builds and
        final outputs each count the rows they move — the measured
        analogue of the cost model's volume terms, and the headline
        number the feedback benchmark compares across plans.
        """
        return (self.rows_extracted + self.rows_shuffled +
                self.rows_broadcast + self.rows_spooled + self.rows_output)

    def note_fragment_rows(self, group_id: int, rows: int) -> None:
        """Accumulate measured output rows for one plan fragment.

        Within one executor (or one scheduled task slice) callers must
        report each fragment at most once; sliced tasks of the same
        vertex sum because each slice carries one partition's share.
        """
        self.fragment_rows[group_id] = (
            self.fragment_rows.get(group_id, 0) + rows
        )

    def note_partition_sizes(self, partitions) -> None:
        for partition in partitions:
            if len(partition) > self.max_partition_rows:
                self.max_partition_rows = len(partition)

    def merge_from(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object (a task's scratch) into this one.

        The scheduler merges task scratches in vertex order once the run
        completes, so the result does not depend on completion order.
        """
        self.rows_extracted += other.rows_extracted
        self.rows_shuffled += other.rows_shuffled
        self.rows_broadcast += other.rows_broadcast
        self.rows_spooled += other.rows_spooled
        self.spool_reads += other.spool_reads
        self.rows_output += other.rows_output
        self.rows_sorted += other.rows_sorted
        self.rows_filtered += other.rows_filtered
        self.simulated_makespan += other.simulated_makespan
        self.task_retries += other.task_retries
        self.worker_deaths += other.worker_deaths
        for name, count in other.operator_invocations.items():
            self.operator_invocations[name] = (
                self.operator_invocations.get(name, 0) + count
            )
        for backend, count in other.batches_processed.items():
            self.note_batches(backend, count)
        if other.max_partition_rows > self.max_partition_rows:
            self.max_partition_rows = other.max_partition_rows
        self.vertices.update(other.vertices)
        # fragment_rows is deliberately NOT merged here: task slices of
        # one vertex must sum while duplicate executions of the same
        # fragment across vertices must not, so the scheduler attributes
        # fragments explicitly during finalization.

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"makespan:   {self.simulated_makespan:>12,.0f}",
            f"extracted:  {self.rows_extracted:>12,}",
            f"shuffled:   {self.rows_shuffled:>12,}",
            f"broadcast:  {self.rows_broadcast:>12,}",
            f"spooled:    {self.rows_spooled:>12,} (reads: {self.spool_reads})",
            f"sorted:     {self.rows_sorted:>12,}",
            f"filtered:   {self.rows_filtered:>12,}",
            f"output:     {self.rows_output:>12,}",
            f"max part:   {self.max_partition_rows:>12,}",
        ]
        if self.worker_deaths:
            lines.append(f"worker deaths: {self.worker_deaths:>9,}")
        ops = ", ".join(
            f"{name}×{count}"
            for name, count in sorted(self.operator_invocations.items())
        )
        lines.append(f"operators:  {ops}")
        if self.batches_processed:
            batches = ", ".join(
                f"{backend}={count:,}"
                for backend, count in sorted(self.batches_processed.items())
            )
            lines.append(f"batches:    {batches}")
        if self.vertices:
            lines.append(
                f"vertices:   {len(self.vertices):>12,} "
                f"(retries: {self.task_retries})"
            )
            for name in sorted(self.vertices):
                stats = self.vertices[name]
                est = (
                    "est=?" if stats.estimate_missing
                    else f"est×{stats.cardinality_ratio:.2f}"
                )
                lines.append(
                    f"  {name}: launches={stats.launches} "
                    f"tasks={stats.tasks} retries={stats.retries} "
                    f"rows={stats.rows_in:,}→{stats.rows_out:,} "
                    f"{est}"
                )
        return "\n".join(lines)

    def vertex_table(self) -> Optional[str]:
        """Wide per-vertex table including measured wall times.

        Unlike :meth:`summary` this includes wall-clock values, so it is
        *not* run-to-run deterministic; the CLI prints it, tests don't
        compare it.
        """
        if not self.vertices:
            return None
        header = (
            f"{'vertex':<28}{'launch':>7}{'tasks':>6}{'retry':>6}"
            f"{'rows in':>12}{'rows out':>12}{'est ratio':>10}{'ms':>9}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.vertices):
            s = self.vertices[name]
            ratio = (
                "n/a" if s.estimate_missing
                else f"{s.cardinality_ratio:.2f}"
            )
            lines.append(
                f"{s.vertex:<28}{s.launches:>7}{s.tasks:>6}{s.retries:>6}"
                f"{s.rows_in:>12,}{s.rows_out:>12,}"
                f"{ratio:>10}{s.wall_seconds * 1e3:>9.1f}"
            )
        return "\n".join(lines)

    # -- stable export / event-bus publishing -----------------------------

    _COUNTER_FIELDS = (
        "rows_extracted", "rows_shuffled", "rows_broadcast", "rows_spooled",
        "spool_reads", "rows_output", "rows_sorted", "rows_filtered",
        "max_partition_rows", "simulated_makespan", "task_retries",
        "worker_deaths",
    )

    def to_labels(self) -> Dict[str, float]:
        """Stable flat ``name -> value`` export of every deterministic
        counter: the scalar fields in declaration order, then
        ``batches_processed.<backend>`` and ``operator.<name>`` sorted.

        This is the one canonical dict both :meth:`publish` (and hence
        the metrics collector) and the CLI's ``--stats-json`` render
        from — wall-clock values are excluded, so two runs of the same
        plan/data/seed export identical dicts.
        """
        out: Dict[str, float] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        for backend in sorted(self.batches_processed):
            out[f"batches_processed.{backend}"] = \
                self.batches_processed[backend]
        for name in sorted(self.operator_invocations):
            out[f"operator.{name}"] = self.operator_invocations[name]
        return out

    def as_dict(self) -> Dict[str, object]:
        """:meth:`to_labels` plus a per-vertex section (launches, tasks,
        retries, rows, batches) — the full deterministic JSON view."""
        doc: Dict[str, object] = dict(self.to_labels())
        if self.vertices:
            doc["vertices"] = {
                name: {
                    "launches": stats.launches,
                    "tasks": stats.tasks,
                    "retries": stats.retries,
                    "rows_in": stats.rows_in,
                    "rows_out": stats.rows_out,
                    "batches": stats.batches,
                    "estimated_rows": stats.estimated_rows,
                    "serves": list(stats.serves),
                }
                for name, stats in sorted(self.vertices.items())
            }
        return doc

    def publish(self, bus) -> None:
        """Emit this run's counters onto an :class:`~repro.obs.bus.EventBus`.

        One ``exec.counter`` event per scalar counter, one
        ``exec.operator`` event per operator kind, and one
        ``exec.vertex`` event per scheduled vertex — the execution-side
        feed of the shared observability bus (wall-clock values are
        deliberately excluded so the event stream stays deterministic).
        The values come from :meth:`to_labels`, so the event stream and
        the CLI's JSON export can never disagree.
        """
        from ..obs.bus import ObsEvent

        for name, value in self.to_labels().items():
            if name.startswith("operator."):
                bus.publish(ObsEvent.make(
                    "exec.operator", name=name[len("operator."):],
                    invocations=value,
                ))
            else:
                bus.publish(ObsEvent.make(
                    "exec.counter", name=name, value=value,
                ))
        for name in sorted(self.vertices):
            stats = self.vertices[name]
            bus.publish(ObsEvent.make(
                "exec.vertex",
                vertex=stats.vertex,
                launches=stats.launches,
                tasks=stats.tasks,
                retries=stats.retries,
                rows_in=stats.rows_in,
                rows_out=stats.rows_out,
                batches=stats.batches,
                estimated_rows=stats.estimated_rows,
                estimate_missing=stats.estimate_missing,
                simulated_makespan=stats.simulated_makespan,
                serves=stats.serves,
            ))
