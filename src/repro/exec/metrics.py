"""Execution metrics collected by the cluster simulator.

These are the measured counterparts of the cost model's components:
rows shipped through exchanges, rows spooled, rows processed per
operator, and the maximum per-partition row count (a direct skew
indicator).  Tests use them to check that the optimizer's choices have
the claimed effect (e.g. the CSE plan extracts the input once and ships
fewer rows than the conventional plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ExecutionMetrics:
    """Counters accumulated over one plan execution."""

    rows_extracted: int = 0
    rows_shuffled: int = 0
    rows_broadcast: int = 0
    rows_spooled: int = 0
    spool_reads: int = 0
    rows_output: int = 0
    rows_sorted: int = 0
    operator_invocations: Dict[str, int] = field(default_factory=dict)
    max_partition_rows: int = 0
    #: Simulated wall-clock model: per operator execution, the slowest
    #: partition's work (rows × a per-operator weight) plus the full
    #: volume of exchanges — a critical-path approximation of the job's
    #: makespan.  Used to validate the optimizer's cost model ordering
    #: against "measured" runtimes.
    simulated_makespan: float = 0.0

    #: Per-row weights of the makespan model, mirroring the cost model's
    #: shape (exchanges pay volume, compute pays the slowest partition).
    COMPUTE_WEIGHT = 1.0
    EXCHANGE_WEIGHT = 2.0
    SPOOL_WEIGHT = 1.0

    def charge_compute(self, partitions) -> None:
        slowest = max((len(p) for p in partitions), default=0)
        self.simulated_makespan += slowest * self.COMPUTE_WEIGHT

    def charge_exchange(self, total_rows: int) -> None:
        self.simulated_makespan += total_rows * self.EXCHANGE_WEIGHT

    def charge_spool(self, total_rows: int) -> None:
        self.simulated_makespan += total_rows * self.SPOOL_WEIGHT

    def note_operator(self, name: str) -> None:
        self.operator_invocations[name] = self.operator_invocations.get(name, 0) + 1

    def note_partition_sizes(self, partitions) -> None:
        for partition in partitions:
            if len(partition) > self.max_partition_rows:
                self.max_partition_rows = len(partition)

    def summary(self) -> str:
        lines = [
            f"makespan:   {self.simulated_makespan:>12,.0f}",
            f"extracted:  {self.rows_extracted:>12,}",
            f"shuffled:   {self.rows_shuffled:>12,}",
            f"broadcast:  {self.rows_broadcast:>12,}",
            f"spooled:    {self.rows_spooled:>12,} (reads: {self.spool_reads})",
            f"sorted:     {self.rows_sorted:>12,}",
            f"output:     {self.rows_output:>12,}",
            f"max part:   {self.max_partition_rows:>12,}",
        ]
        ops = ", ".join(
            f"{name}×{count}"
            for name, count in sorted(self.operator_invocations.items())
        )
        return "\n".join(lines + [f"operators:  {ops}"])
