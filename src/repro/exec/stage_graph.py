"""Compile a physical plan DAG into schedulable stages ("vertices").

This is the job-manager half of the Cosmos/Dryad execution model the
paper targets: a physical plan is cut into **vertices** at the points
where data leaves a machine-local pipeline —

* **exchange boundaries** (``Repartition``, ``RangeRepartition``,
  ``Merge``, ``BroadcastJoin``), because rows cross machines there; and
* **spool boundaries** (``Spool``), because the shared result is
  materialized once and re-read by every consumer.

The cut mirrors the cost model's tree/DAG split exactly: a spool node is
compiled into **one** vertex no matter how many consumers reference it
(the CSE plans of Figure 8(b)), while every other multi-referenced node
is expanded per reference — the duplicated-pipeline semantics of a
conventional plan (Figure 8(a)) that the sequential
:class:`~repro.exec.runtime.PlanExecutor` implements by re-recursing.

Each vertex records which of its fragment's operators are partition-local
(``partitionwise``); the scheduler fans those vertices out into one task
per partition, which is the per-partition vertex scheduling of the
Cosmos job manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..plan.logical import GroupByMode
from ..plan.physical import (
    PhysBroadcastJoin,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
)

#: Operators that cut the DAG into stages: everything that moves rows
#: across machines, plus the materialization point of a shared result.
_BOUNDARY_OPS = (
    PhysRepartition,
    PhysRangeRepartition,
    PhysMerge,
    PhysSpool,
    PhysBroadcastJoin,
)


def _is_boundary(node: PhysicalPlan) -> bool:
    return isinstance(node.op, _BOUNDARY_OPS)


def _partition_local(node: PhysicalPlan, validate: bool) -> bool:
    """True if the operator computes partition *i* of its output from
    partition *i* of its inputs alone.

    With runtime validation on, operators whose correctness checks span
    partitions (co-location of join keys and grouping keys, single-
    partition occupancy of final top-n) are excluded so that slicing a
    vertex into per-partition tasks never weakens a check.
    """
    op = node.op
    if isinstance(op, (PhysFilter, PhysProject, PhysSort)):
        return True
    if isinstance(op, (PhysStreamAgg, PhysHashAgg, PhysTopN)):
        return op.mode is GroupByMode.LOCAL or not validate
    if isinstance(op, (PhysMergeJoin, PhysHashJoin)):
        return not validate
    return False


@dataclass
class Vertex:
    """One schedulable unit: a fused pipeline between boundaries."""

    vid: int
    #: Topmost plan node of the fragment — its output is the vertex's.
    root: PhysicalPlan
    #: Fragment operator names, innermost first (execution order).
    op_names: List[str] = field(default_factory=list)
    #: ``id(child plan node)`` -> producing vertex id, for every edge
    #: that leaves the fragment.
    cut_nodes: Dict[int, int] = field(default_factory=dict)
    #: Producing vertices, in first-reference order (duplicates removed).
    deps: List[int] = field(default_factory=list)
    #: Vertices consuming this vertex's output (filled by the builder).
    consumers: List[int] = field(default_factory=list)
    #: True for the single vertex materializing a shared spool.
    is_spool: bool = False
    #: Producing vertex id of every fragment edge that reads a spool
    #: cut, one entry per reference (used by the scheduler to account
    #: spool reads once per reference, as the sequential executor does).
    spool_cut_vids: List[int] = field(default_factory=list)
    #: True if every fragment operator is partition-local, so the
    #: scheduler may run one task per partition.
    partitionwise: bool = False
    #: Output paths this vertex's result (transitively) feeds, sorted.
    #: A vertex serving outputs of more than one script of a merged
    #: batch (paths are ``<label>/...``-prefixed there) is *shared*
    #: cross-script work that executes once instead of per script.
    serves: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return f"V{self.vid:02d}:{self.root.op.name}"


@dataclass
class StageGraph:
    """All vertices of a plan, in deterministic bottom-up order."""

    vertices: List[Vertex]
    #: Vertex producing the plan root's output.
    root_vid: int = 0

    def __len__(self) -> int:
        return len(self.vertices)

    def spool_vertices(self) -> List[Vertex]:
        return [v for v in self.vertices if v.is_spool]

    def render(self) -> str:
        """Readable listing, one line per vertex."""
        lines = [f"{len(self.vertices)} vertices:"]
        for v in self.vertices:
            deps = (
                " <- " + ",".join(f"V{d:02d}" for d in v.deps)
                if v.deps else ""
            )
            tags = []
            if v.is_spool:
                tags.append("spool")
            if v.partitionwise:
                tags.append("partitionwise")
            tag = f" [{','.join(tags)}]" if tags else ""
            lines.append(
                f"  {v.name}{tag}{deps}: {' → '.join(v.op_names)}"
            )
        return "\n".join(lines)


def build_stage_graph(plan: PhysicalPlan, validate: bool = True) -> StageGraph:
    """Cut ``plan`` into vertices.

    The walk expands the DAG as a tree — re-visiting shared non-spool
    nodes once per reference, exactly like the sequential executor
    re-runs them — except at ``Spool`` nodes, which are memoized so the
    materializing vertex exists (and therefore executes) exactly once.
    """
    vertices: List[Vertex] = []
    spool_vids: Dict[int, int] = {}

    def new_vertex(root: PhysicalPlan) -> Vertex:
        vertex = Vertex(vid=len(vertices), root=root)
        vertices.append(vertex)
        return vertex

    def add_cut(vertex: Vertex, child: PhysicalPlan, cvid: int) -> None:
        vertex.cut_nodes[id(child)] = cvid
        if cvid not in vertex.deps:
            vertex.deps.append(cvid)
        if isinstance(child.op, PhysSpool):
            vertex.spool_cut_vids.append(cvid)

    def visit(node: PhysicalPlan) -> int:
        """Returns the id of the vertex producing ``node``'s output."""
        if isinstance(node.op, PhysSpool):
            cached = spool_vids.get(id(node))
            if cached is not None:
                return cached
        child_vids = [visit(child) for child in node.children]
        fuse_target = vertices[child_vids[0]] if child_vids else None
        if (
            fuse_target is None
            or _is_boundary(node)
            or fuse_target.is_spool
        ):
            vertex = new_vertex(node)
            for child, cvid in zip(node.children, child_vids):
                add_cut(vertex, child, cvid)
        else:
            vertex = fuse_target
            vertex.root = node
            for child, cvid in zip(node.children[1:], child_vids[1:]):
                add_cut(vertex, child, cvid)
        vertex.op_names.append(node.op.name)
        if isinstance(node.op, PhysSpool):
            vertex.is_spool = True
            spool_vids[id(node)] = vertex.vid
        return vertex.vid

    root_vid = visit(plan)

    # Second pass: consumer lists and partitionwise eligibility.  The
    # eligibility check re-walks each fragment from its root down to the
    # cut points (cheap: fragments are small pipelines).
    for vertex in vertices:
        for dep in vertex.deps:
            vertices[dep].consumers.append(vertex.vid)
    for vertex in vertices:
        if vertex.is_spool or not vertex.deps:
            # Spool vertices are pure pass-through builds; source
            # vertices (Extract) distribute rows globally.
            vertex.partitionwise = False
            continue
        local = True
        stack = [vertex.root]
        while stack and local:
            node = stack.pop()
            if id(node) in vertex.cut_nodes:
                continue
            local = _partition_local(node, validate)
            stack.extend(node.children)
        vertex.partitionwise = local

    # Third pass: output attribution.  A plan node serves output path P
    # iff it lies inside P's producing subtree; a vertex serves the
    # union over its fragment's nodes.  (Attribution is plan-level: a
    # conventionally duplicated subtree credits each expanded copy with
    # every output the *node* feeds — only spooled sharing guarantees
    # the serving work ran once.)
    node_serves: Dict[int, set] = {}
    output_nodes: List[PhysicalPlan] = []
    stack, seen = [plan], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node.op, PhysOutput):
            output_nodes.append(node)
        stack.extend(node.children)
    for out in output_nodes:
        stack, seen = [out], set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node_serves.setdefault(id(node), set()).add(out.op.path)
            stack.extend(node.children)
    for vertex in vertices:
        paths: set = set()
        stack, seen = [vertex.root], set()
        while stack:
            node = stack.pop()
            if id(node) in seen or id(node) in vertex.cut_nodes:
                continue
            seen.add(id(node))
            paths |= node_serves.get(id(node), set())
            stack.extend(node.children)
        vertex.serves = tuple(sorted(paths))
    return StageGraph(vertices=vertices, root_vid=root_vid)
