"""Partitioned datasets — the simulator's unit of data.

A :class:`Dataset` models a distributed rowset: a list of partitions
(one per machine slot), each a list of row dicts, plus the *claimed*
physical properties.  ``validate_layout`` re-checks the claims against
the actual data, which turns optimizer property bugs into hard test
failures instead of silently wrong costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..plan.columns import Schema
from ..plan.expressions import Row, Value
from ..plan.properties import PartitionKind, PhysicalProps

Partition = List[Row]


def hash_partition_index(row: Row, columns: Iterable[str], n: int) -> int:
    """Deterministic partition index of ``row`` for hash partitioning."""
    key = tuple(row[c] for c in sorted(columns))
    return hash(key) % n


def guarded_key(values) -> Tuple:
    """Comparison-safe key: NULLs sort after every concrete value."""
    return tuple((v is None, v) for v in values)


def canonical_sort_key(values) -> Tuple:
    """Total-order key over heterogeneous values for canonical sorting.

    Each value maps to ``(is_null, type_rank, value)``: NULLs sort after
    every concrete value, numbers (rank 0) before strings (rank 1)
    before anything else (rank 2, compared by ``repr``).  Within a rank
    values compare natively, so the order of homogeneous columns — the
    only kind the executors produce — is unchanged from the plain
    ``(v is None, v)`` key; mixed int/str positions, which used to raise
    ``TypeError``, now get a deterministic order instead.
    """
    key = []
    for v in values:
        if v is None:
            key.append((True, 0, 0))
        elif isinstance(v, str):
            key.append((False, 1, v))
        elif isinstance(v, (int, float)):
            key.append((False, 0, v))
        else:
            key.append((False, 2, repr(v)))
    return tuple(key)


@dataclass
class Dataset:
    """A partitioned rowset with claimed physical properties."""

    schema: Schema
    partitions: List[Partition]
    props: PhysicalProps = field(default_factory=PhysicalProps)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def total_rows(self) -> int:
        return sum(len(p) for p in self.partitions)

    def all_rows(self) -> List[Row]:
        rows: List[Row] = []
        for partition in self.partitions:
            rows.extend(partition)
        return rows

    def sorted_rows(self) -> List[Tuple[Value, ...]]:
        """All rows as canonically ordered tuples (for comparisons)."""
        names = self.schema.names
        rows = [tuple(row[c] for c in names) for row in self.all_rows()]
        return sorted(rows, key=canonical_sort_key)

    def canonical_bytes(self) -> bytes:
        """Schema + canonically sorted rows as bytes.

        The differential execution harness compares these: two datasets
        are interchangeable results iff their canonical bytes are equal,
        regardless of partition layout or row order.
        """
        header = ",".join(self.schema.names)
        body = "\n".join(repr(row) for row in self.sorted_rows())
        return f"{header}\n{body}".encode("utf-8")

    def validate_layout(self) -> Optional[str]:
        """Check the data matches the claimed properties.

        Returns ``None`` if everything holds, else a human-readable
        description of the first violation.
        """
        part = self.props.partitioning
        if part.kind is PartitionKind.SERIAL:
            occupied = [i for i, p in enumerate(self.partitions) if p]
            if len(occupied) > 1:
                return f"serial claim violated: partitions {occupied} non-empty"
        elif part.kind is PartitionKind.HASH:
            seen: Dict[Tuple[Value, ...], int] = {}
            for idx, partition in enumerate(self.partitions):
                for row in partition:
                    key = tuple(row[c] for c in sorted(part.columns))
                    prev = seen.setdefault(key, idx)
                    if prev != idx:
                        return (
                            f"hash({','.join(sorted(part.columns))}) claim "
                            f"violated: key {key} in partitions {prev} and {idx}"
                        )
        elif part.kind is PartitionKind.RANGE:
            # Key ranges must be disjoint and ascending with the
            # partition index (which also implies co-location).
            previous_max = None
            for idx, partition in enumerate(self.partitions):
                if not partition:
                    continue
                keys = [
                    guarded_key(row[c] for c in part.order)
                    for row in partition
                ]
                low, high = min(keys), max(keys)
                if previous_max is not None and low <= previous_max:
                    return (
                        f"range({','.join(part.order)}) claim violated: "
                        f"partition {idx} starts at {low} but an earlier "
                        f"partition reaches {previous_max}"
                    )
                previous_max = high
        order = self.props.sort_order
        if order.is_sorted:
            for idx, partition in enumerate(self.partitions):
                previous = None
                for row in partition:
                    key = guarded_key(row[c] for c in order.columns)
                    if previous is not None and key < previous:
                        return (
                            f"sort {order} claim violated in partition {idx}: "
                            f"{key} after {previous}"
                        )
                    previous = key
        return None
