"""Execution backend registry: row vs columnar.

A :class:`Backend` bundles everything the driver layers (api, service,
CLI, scheduler) need to run a plan on one engine without knowing its
data layout:

* ``executor_cls`` — the sequential executor (``PlanExecutor`` shape);
* ``fragment_cls`` — the scheduler's per-task fragment executor (the
  same engine behind :class:`~repro.exec.runtime.FragmentCutMixin`);
* ``to_backend`` / ``to_row`` — conversion shims applied at vertex
  boundaries, so the scheduler's committed results (and the result
  files) are always row :class:`~repro.exec.datasets.Dataset` objects
  whichever backend ran the vertex bodies;
* ``from_wire`` — the process runtime's input shim: exchange data
  arrives from disk as columnar wire blobs
  (:mod:`repro.exec.dist.wire`), and this converts a decoded
  :class:`~repro.exec.columnar.batch.ColumnarDataset` into the engine's
  native layout.  For the columnar backend it is the identity — wire
  exchanges feed the kernels directly, with none of the row-dataset
  materialization the thread scheduler pays at every boundary.

Because fragments convert at the boundary, every scheduler feature —
retries over injected faults, exactly-once spools, ``serves``
attribution, span tracing, per-vertex metrics — works unchanged over
either backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from .columnar.batch import ColumnarDataset, from_row_dataset
from .columnar.executor import ColumnarExecutor
from .datasets import Dataset
from .runtime import FragmentCutMixin, PlanExecutor


class _RowFragmentExecutor(FragmentCutMixin, PlanExecutor):
    """Row-backend fragment executor (one scheduler task)."""


class _ColumnarFragmentExecutor(FragmentCutMixin, ColumnarExecutor):
    """Columnar-backend fragment executor (one scheduler task)."""


def _identity(dataset):
    return dataset


def _to_columnar(dataset):
    if isinstance(dataset, ColumnarDataset):
        return dataset
    return from_row_dataset(dataset)


def _to_row(dataset):
    if isinstance(dataset, Dataset):
        return dataset
    return dataset.to_row_dataset()


@dataclass(frozen=True)
class Backend:
    """One selectable execution engine."""

    name: str
    executor_cls: type
    fragment_cls: type
    #: row ``Dataset`` -> the backend's dataset type (vertex input shim)
    to_backend: Callable
    #: the backend's dataset type -> row ``Dataset`` (vertex output shim)
    to_row: Callable
    #: decoded wire ``ColumnarDataset`` -> the backend's dataset type
    #: (process-runtime exchange input shim)
    from_wire: Callable = _to_columnar


ROW_BACKEND = Backend(
    name="row",
    executor_cls=PlanExecutor,
    fragment_cls=_RowFragmentExecutor,
    to_backend=_identity,
    to_row=_identity,
    from_wire=_to_row,
)

COLUMNAR_BACKEND = Backend(
    name="columnar",
    executor_cls=ColumnarExecutor,
    fragment_cls=_ColumnarFragmentExecutor,
    to_backend=_to_columnar,
    to_row=_to_row,
    from_wire=_identity,
)

BACKENDS = {
    backend.name: backend for backend in (ROW_BACKEND, COLUMNAR_BACKEND)
}

BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(BACKENDS))


def get_backend(name: str) -> Backend:
    backend = BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(available: {', '.join(BACKEND_NAMES)})"
        )
    return backend
