"""Supervisor side of the multiprocess distributed runtime.

:class:`ProcessScheduler` is a drop-in :class:`~repro.exec.TaskScheduler`
variant that runs vertex tasks on a pool of forked worker *processes*
instead of threads — the paper's actual execution model, where each
stage's machines run concurrently and exchange data through files:

* the stage graph is cut exactly as before (same
  :func:`~repro.exec.stage_graph.build_stage_graph`, same vertices,
  same partitionwise task slicing);
* exchange and spool partitions are materialized as columnar wire blobs
  under a run-scoped :class:`~repro.exec.dist.spill.SpillStore`
  directory — exactly-once via atomic renames and an fsync'd manifest,
  removed on success, preserved on failure;
* worker **death** (SIGKILL/OOM, not just exceptions) is detected from
  the pipe: queued replies of a dying worker are drained first — their
  tasks completed, so they count exactly once — then the EOF marks only
  the in-flight task as lost.  Lost tasks are re-dispatched within the
  ordinary :class:`~repro.exec.RetryPolicy` budget against the spilled
  inputs already on disk, and the dead worker is replaced by a fresh
  fork.  Exhausting the budget raises the same
  :class:`~repro.exec.VertexFailedError` naming the vertex;
* spool vertices are pass-through builds with no compute, so the
  supervisor commits them inline by aliasing the producer's spill files
  — charged identically to the thread scheduler's spool tasks;
* finalization is literally shared code (``TaskScheduler._finalize``):
  worker metric scratches merge in deterministic vertex order, spans
  and ``serves`` attribution work unchanged, and per-vertex counters
  aggregate without double-counting re-dispatched tasks because only
  the winning reply ever fills a task slot.

Workers are forked, never spawned: fragment cut points are keyed by
``id(plan_node)`` and survive only through copy-on-write inheritance.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Deque, Dict, List, Optional

from ...obs.tracer import NULL_TRACER
from ...plan.physical import PhysicalPlan
from ..columnar.batch import ColumnarDataset
from ..datasets import Dataset
from ..metrics import ExecutionMetrics, VertexStats
from ..runtime import ExecutionError
from ..scheduler import (
    InjectedFault,
    TaskScheduler,
    VertexFailedError,
    _Task,
    _VertexRun,
)
from ..stage_graph import StageGraph, Vertex, build_stage_graph
from .spill import SpillStore
from .wire import decode_dataset
from .worker import worker_main


class WorkerLost(RuntimeError):
    """A worker process died (SIGKILL, OOM, crash) mid-task.

    Retryable like :class:`~repro.exec.InjectedFault`: the lost task is
    re-dispatched against its spilled inputs within the retry budget.
    """


@dataclass(frozen=True)
class KillPlan:
    """Deterministic crash-fault injection for the process runtime.

    Counts task dispatches — per vertex name when ``vertex`` is set,
    globally otherwise — and SIGKILLs the worker receiving dispatch
    ``k`` whenever ``nth_task <= k < nth_task + times``.  The kill
    happens *in the worker, before the task runs*, so it is
    indistinguishable from a machine lost mid-stage.
    """

    vertex: Optional[str] = None
    nth_task: int = 0
    times: int = 1

    def matches(self, vertex_name: str) -> bool:
        return self.vertex is None or vertex_name == self.vertex

    def should_kill(self, seen: int) -> bool:
        return self.nth_task <= seen < self.nth_task + self.times


@dataclass
class SpilledResult:
    """Metadata handle for one vertex output materialized on disk."""

    #: One wire-blob file (relative to the spill root) per partition.
    parts: List[str]
    #: Row count per partition (so dependents never decode for counts).
    rows: List[int]

    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    def total_rows(self) -> int:
        return sum(self.rows)


#: Sentinel event payload: the worker's pipe hit EOF (process death).
_WORKER_DEAD = object()


class _PoolWorker:
    __slots__ = ("worker_id", "process", "conn", "current", "alive")

    def __init__(self, worker_id, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: The dispatched task this worker is running (at most one).
        self.current: Optional[_Task] = None
        self.alive = True


class _WorkerPool:
    """Forked worker processes plus their duplex control pipes."""

    def __init__(self, ctx, size, graph, cluster, backend, validate,
                 faults, retry, spill):
        self.ctx = ctx
        self.size = size
        self.graph = graph
        self.cluster = cluster
        self.backend = backend
        self.validate = validate
        self.faults = faults
        self.retry = retry
        self.spill = spill
        self.workers: List[_PoolWorker] = []
        self._next_id = 0

    def start(self) -> None:
        for _ in range(self.size):
            self.workers.append(self._spawn())

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = self.ctx.Pipe()
        worker_id = self._next_id
        self._next_id += 1
        process = self.ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.graph, self.cluster.files,
                  self.cluster.machines, self.backend, self.validate,
                  self.faults, self.retry, self.spill),
            name=f"repro-dist-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end: otherwise the pipe
        # never reaches EOF and worker death would be undetectable.
        child_conn.close()
        return _PoolWorker(worker_id, process, parent_conn)

    def idle_worker(self) -> Optional[_PoolWorker]:
        for worker in self.workers:
            if worker.alive and worker.current is None:
                return worker
        return None

    def inflight_count(self) -> int:
        return sum(1 for w in self.workers if w.current is not None)

    def wait(self, timeout):
        """Block for replies; returns ``[(worker, payload-or-DEAD)]``.

        Queued replies of a dying worker drain *before* its EOF event:
        those tasks finished, and processing them first is what keeps
        task effects (slots, scratches, outputs) exactly-once under
        re-dispatch.
        """
        by_conn = {w.conn: w for w in self.workers if w.alive}
        ready = connection.wait(list(by_conn), timeout)
        events = []
        for conn in ready:
            worker = by_conn[conn]
            while True:
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    worker.alive = False
                    worker.process.join(timeout=5.0)
                    events.append((worker, _WORKER_DEAD))
                    break
                events.append((worker, payload))
                if not conn.poll():
                    break
        return events

    def respawn(self, worker: _PoolWorker) -> None:
        """Replace a dead worker with a freshly forked one."""
        try:
            worker.conn.close()
        except OSError:
            pass
        self.workers.remove(worker)
        self.workers.append(self._spawn())

    def shutdown(self, force: bool = False) -> None:
        for worker in self.workers:
            if not worker.alive:
                continue
            if force:
                worker.process.terminate()
            else:
                try:
                    worker.conn.send({"op": "stop"})
                except OSError:
                    pass
        for worker in self.workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass


@dataclass
class _RunState:
    """Mutable scheduling state of one distributed execution."""

    graph: StageGraph
    pending_deps: Dict[int, int] = field(default_factory=dict)
    consumers_left: Dict[int, int] = field(default_factory=dict)
    results: Dict[int, SpilledResult] = field(default_factory=dict)
    runs: Dict[int, _VertexRun] = field(default_factory=dict)
    finished: Dict[int, _VertexRun] = field(default_factory=dict)
    ready: Deque[_Task] = field(default_factory=deque)
    #: Dispatch counters feeding the kill plan (key: vertex name or "*").
    kill_counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self.pending_deps = {
            v.vid: len(set(v.deps)) for v in self.graph.vertices
        }
        self.consumers_left = {
            v.vid: len(v.consumers) for v in self.graph.vertices
        }


class ProcessScheduler(TaskScheduler):
    """Runs physical plans on forked worker processes with disk spill.

    Same constructor shape and ``execute(plan) -> outputs`` contract as
    :class:`~repro.exec.TaskScheduler`; the differential suite holds
    thread and process runs byte-identical on outputs and equal on every
    deterministic counter.  Additional knobs:

    ``spill_dir``
        Parent directory for the run-scoped spill directory (default: a
        fresh temp dir).  Removed on success unless ``keep_spill``;
        always preserved — manifest included — on failure.
    ``kill_plan``
        Deterministic :class:`KillPlan` crash-fault injection.
    """

    def __init__(self, cluster, workers: int = 4, validate: bool = True,
                 faults=None, retry=None, watchdog: Optional[float] = None,
                 tracer=NULL_TRACER, backend: str = "row",
                 spill_dir: Optional[str] = None, keep_spill: bool = False,
                 kill_plan: Optional[KillPlan] = None):
        super().__init__(cluster, workers=workers, validate=validate,
                         faults=faults, retry=retry, watchdog=watchdog,
                         tracer=tracer, backend=backend)
        self.spill_dir = spill_dir
        self.keep_spill = keep_spill
        self.kill_plan = kill_plan
        #: The last run's spill store (inspectable after failures).
        self.spill: Optional[SpillStore] = None

    # -- public API -------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> Dict[str, Dataset]:
        try:
            ctx = get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX only
            raise ExecutionError(
                "the process runtime requires the 'fork' start method "
                "(POSIX only): fragment cut points are id()-keyed and "
                "survive only through copy-on-write inheritance"
            ) from exc
        with self.tracer.span("stage_graph.cut") as cut_span:
            graph = build_stage_graph(plan, validate=self.validate)
            cut_span.set(
                vertices=len(graph.vertices),
                spools=len(graph.spool_vertices()),
                partitionwise=sum(
                    1 for v in graph.vertices if v.partitionwise
                ),
            )
        self.stage_graph = graph
        self.metrics = ExecutionMetrics()
        spill = SpillStore(self.spill_dir)
        self.spill = spill
        state = _RunState(graph)
        pool = _WorkerPool(ctx, self.workers, graph, self.cluster,
                           self.backend.name, self.validate, self.faults,
                           self.retry, spill)
        try:
            pool.start()
            for vertex in graph.vertices:
                if state.pending_deps[vertex.vid] == 0:
                    self._launch_vertex(vertex, state)
            while len(state.finished) < len(graph.vertices):
                self._dispatch_ready(state, pool)
                if not pool.inflight_count() and not state.ready:
                    raise ExecutionError(
                        "scheduler stalled: no runnable tasks but "
                        f"{len(graph.vertices) - len(state.finished)} "
                        "vertices unfinished (dependency cycle?)"
                    )
                events = pool.wait(self.watchdog)
                if not events:
                    raise ExecutionError(
                        f"scheduler watchdog: no task completed within "
                        f"{self.watchdog}s "
                        f"({pool.inflight_count()} in flight)"
                    )
                for worker, payload in events:
                    if payload is _WORKER_DEAD:
                        self._on_worker_death(worker, state, pool)
                    else:
                        self._on_reply(worker, payload, state)
        except BaseException as error:
            # Preserve the spill directory for post-mortems: the
            # manifest names every vertex whose files are reusable.
            spill.fail(repr(error))
            pool.shutdown(force=True)
            raise
        pool.shutdown()
        outputs = self._finalize(state.finished)
        spill.finish()
        if not self.keep_spill:
            spill.cleanup()
        return outputs

    # -- scheduling internals ---------------------------------------------

    def _launch_vertex(self, vertex: Vertex, state: _RunState) -> None:
        inputs = [state.results[dep] for dep in vertex.deps]
        if vertex.is_spool:
            self._run_spool(vertex, inputs, state)
            return
        n_parts = inputs[0].n_partitions if inputs else 0
        sliced = (
            vertex.partitionwise
            and n_parts > 1
            and all(d.n_partitions == n_parts for d in inputs)
        )
        tasks_total = n_parts if sliced else 1
        run = _VertexRun(
            vertex=vertex,
            tasks_total=tasks_total,
            sliced=sliced,
            results=[None] * tasks_total,
            scratches=[None] * tasks_total,
            timings=[None] * tasks_total,
            attempts=[0] * tasks_total,
            stats=VertexStats(
                vertex=vertex.name,
                launches=1,
                tasks=tasks_total,
                estimated_rows=vertex.root.rows,
                rows_in=sum(d.total_rows() for d in inputs),
                serves=vertex.serves,
            ),
        )
        state.runs[vertex.vid] = run
        for slot in range(tasks_total):
            state.ready.append(_Task(
                vertex=vertex,
                part=slot if sliced else None,
                slot=slot,
            ))

    def _run_spool(self, vertex: Vertex, inputs: List[SpilledResult],
                   state: _RunState) -> None:
        """Commit a spool vertex inline, aliasing the producer's files.

        Spool vertices are pure pass-through builds; shipping them to a
        worker would only copy bytes.  The charges mirror the thread
        scheduler's spool task exactly (one build + one read per
        stacked spool reference), so counters stay runtime-independent.
        """
        (dep_result,) = inputs
        started = time.perf_counter()
        scratch = ExecutionMetrics()
        total = dep_result.total_rows()
        for _ in vertex.spool_cut_vids:
            scratch.note_operator("Spool")
            scratch.spool_reads += 1
            scratch.charge_spool(total)
            scratch.note_batches(self.backend.name, dep_result.n_partitions)
        scratch.rows_spooled += total
        scratch.charge_spool(total)
        ended = time.perf_counter()
        run = _VertexRun(
            vertex=vertex,
            tasks_total=1,
            sliced=False,
            tasks_done=1,
            results=[dep_result],
            scratches=[scratch],
            timings=[(started, ended)],
            attempts=[0],
            stats=VertexStats(
                vertex=vertex.name,
                launches=1,
                tasks=1,
                estimated_rows=vertex.root.rows,
                rows_in=total,
                serves=vertex.serves,
            ),
        )
        run.stats.wall_seconds += ended - started
        self._complete_vertex(run, state)

    def _dispatch_ready(self, state: _RunState, pool: _WorkerPool) -> None:
        while state.ready:
            worker = pool.idle_worker()
            if worker is None:
                return
            task = state.ready.popleft()
            kill = False
            if (self.kill_plan is not None
                    and self.kill_plan.matches(task.vertex.name)):
                key = self.kill_plan.vertex or "*"
                seen = state.kill_counts.get(key, 0)
                state.kill_counts[key] = seen + 1
                kill = self.kill_plan.should_kill(seen)
            msg = {
                "op": "task",
                "vid": task.vertex.vid,
                "part": task.part,
                "slot": task.slot,
                "attempt": task.attempt,
                "cuts": {
                    dep_vid: state.results[dep_vid].parts
                    for dep_vid in set(task.vertex.cut_nodes.values())
                },
                "kill": kill,
            }
            if kill:
                self.tracer.emit(
                    "scheduler.kill_injected", vertex=task.vertex.name,
                    part=task.part, attempt=task.attempt,
                    worker=worker.worker_id,
                )
            try:
                worker.current = task
                worker.conn.send(msg)
            except OSError:
                # The worker died between replies; hand the task back,
                # account the death and replace the process.
                worker.current = None
                worker.alive = False
                worker.process.join(timeout=5.0)
                state.ready.appendleft(task)
                self.metrics.worker_deaths += 1
                pool.respawn(worker)

    def _on_reply(self, worker: _PoolWorker, payload,
                  state: _RunState) -> None:
        task = worker.current
        worker.current = None
        if task is None:  # pragma: no cover - defensive
            return
        if payload.get("op") == "error":
            if payload["retryable"]:
                error: BaseException = InjectedFault(payload["error"])
            else:
                error = ExecutionError(payload["error"])
            self._handle_task_failure(task, error, state)
            return
        run = state.runs.get(payload["vid"])
        if run is None or run.results[payload["slot"]] is not None:
            # A stale duplicate (the slot already has a winner): drop it
            # so re-dispatched tasks can never double-count metrics.
            return
        slot = payload["slot"]
        run.results[slot] = SpilledResult(parts=payload["parts"],
                                          rows=payload["rows"])
        run.scratches[slot] = payload["scratch"]
        run.timings[slot] = (payload["started"], payload["ended"])
        run.attempts[slot] = payload["attempt"]
        run.stats.wall_seconds += payload["ended"] - payload["started"]
        run.tasks_done += 1
        for path, blob in payload["outputs"].items():
            self.cluster.write_output(
                path, decode_dataset(blob).to_row_dataset()
            )
        if run.tasks_done == run.tasks_total:
            self._complete_vertex(run, state)

    def _on_worker_death(self, worker: _PoolWorker, state: _RunState,
                         pool: _WorkerPool) -> None:
        task = worker.current
        worker.current = None
        self.metrics.worker_deaths += 1
        self.tracer.emit(
            "scheduler.worker_lost", worker=worker.worker_id,
            vertex=task.vertex.name if task else None,
            part=task.part if task else None,
        )
        pool.respawn(worker)
        if task is None:  # pragma: no cover - died while idle
            return
        self._handle_task_failure(
            task,
            WorkerLost(
                f"worker {worker.worker_id} died while running "
                f"{task.vertex.name} (part={task.part}, "
                f"attempt={task.attempt})"
            ),
            state,
        )

    def _handle_task_failure(self, task: _Task, error: BaseException,
                             state: _RunState) -> None:
        retryable = isinstance(error, (InjectedFault, WorkerLost))
        if retryable and task.attempt < self.retry.max_retries:
            # The vertex has not committed, so its spilled inputs are
            # still pinned on disk; re-dispatch only this task.
            task.attempt += 1
            state.runs[task.vertex.vid].stats.retries += 1
            self.tracer.emit(
                "scheduler.retry", vertex=task.vertex.name,
                part=task.part, attempt=task.attempt,
            )
            state.ready.append(task)
            return
        raise VertexFailedError(
            task.vertex.name, task.attempt + 1, error
        ) from error

    def _complete_vertex(self, run: _VertexRun, state: _RunState) -> None:
        vertex = run.vertex
        result = self._commit_spilled(run, state.results)
        state.results[vertex.vid] = result
        state.finished[vertex.vid] = run
        state.runs.pop(vertex.vid, None)
        self.spill.commit_vertex(vertex.vid, vertex.name, result.parts,
                                 result.rows)
        for consumer in vertex.consumers:
            state.pending_deps[consumer] -= 1
            if state.pending_deps[consumer] == 0:
                self._launch_vertex(state.graph.vertices[consumer], state)
        # Unlike the thread scheduler, committed results are metadata
        # handles, not datasets, so nothing is released here: the files
        # live until the run-scoped spill directory is cleaned up.
        for dep in vertex.deps:
            state.consumers_left[dep] -= 1

    def _commit_spilled(self, run: _VertexRun,
                        results: Dict[int, SpilledResult]) -> SpilledResult:
        """Assemble a finished vertex's spilled output; mirror of the
        thread scheduler's ``_commit`` accounting."""
        vertex = run.vertex
        if run.sliced:
            parts = [slot_result.parts[0] for slot_result in run.results]
            rows = [slot_result.rows[0] for slot_result in run.results]
            spilled = SpilledResult(parts=parts, rows=rows)
            if self.validate:
                decoded = [
                    decode_dataset(self.spill.read(p)) for p in parts
                ]
                assembled = ColumnarDataset(
                    vertex.root.schema,
                    [d.partitions[0] for d in decoded],
                    vertex.root.props,
                )
                violation = assembled.validate_layout()
                if violation is not None:
                    raise ExecutionError(
                        f"{vertex.name} produced data violating its "
                        f"claimed properties: {violation}"
                    )
            # Per-reference bookkeeping suppressed in slice mode,
            # accounted exactly once here.
            correction = ExecutionMetrics()
            for name in vertex.op_names:
                correction.note_operator(name)
            for spool_vid in vertex.spool_cut_vids:
                spool_rows = results[spool_vid].total_rows()
                correction.note_operator("Spool")
                correction.spool_reads += 1
                correction.charge_spool(spool_rows)
            run.scratches.append(correction)
        else:
            spilled = run.results[0]
        run.stats.rows_out = spilled.total_rows()
        return spilled
