"""The worker-process side of the distributed runtime.

One :func:`worker_main` loop runs per worker process.  Workers are
**forked** from the supervisor *after* the stage graph is built, so the
graph (with its ``id()``-keyed cut points — see
:class:`~repro.exec.runtime.FragmentCutMixin`), the cluster's input
files and the fault plan all arrive by copy-on-write inheritance.
Nothing plan-shaped is ever pickled: pickling would re-create the plan
nodes under new ``id()``s and silently detach every cut point.

A worker's data plane is files + pipes:

* task *inputs* are read from the run's spill directory as columnar
  wire blobs and handed to the backend through its ``from_wire`` shim
  (for the columnar backend: zero conversion);
* task *outputs* are written back to the spill directory, one wire blob
  per partition, via atomic rename;
* only control metadata — file paths, row counts, the task's metrics
  scratch, and any final ``OUTPUT`` datasets — travels over the duplex
  pipe to the supervisor.

Operator semantics are byte-identical to the thread scheduler: the same
``backend.fragment_cls`` executes the same fragment against the same
partition data, and the same seeded fault coin is tossed at the same
point, so the differential suite holds thread and process runs equal on
outputs *and* on every deterministic counter.
"""

from __future__ import annotations

import gc
import os
import signal
import time

from ..backend import get_backend
from ..cluster import Cluster
from ..columnar.batch import ColumnarDataset
from ..metrics import ExecutionMetrics
from ..scheduler import InjectedFault
from .wire import decode_dataset, encode_dataset


def worker_main(conn, worker_id, graph, files, machines, backend_name,
                validate, faults, retry, spill) -> None:
    """Recv/execute/reply loop of one forked worker process.

    Exits cleanly on a ``stop`` message or when the supervisor's end of
    the pipe closes.  A ``kill`` flag on a task message makes the worker
    SIGKILL itself *before* touching the task — the supervisor's
    crash-fault injection, indistinguishable from a machine loss.
    """
    # Prefork hygiene: everything inherited (plan, graph, input files)
    # is immortal for this worker's lifetime; freezing it keeps the GC
    # from rescanning — and un-sharing, via refcount writes — the big
    # copy-on-write heap on every collection.
    gc.freeze()
    backend = get_backend(backend_name)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg.get("op") == "stop":
            return
        if msg.get("kill"):
            # Die like a preempted machine, not like an exception: no
            # reply, no cleanup, no atexit — the supervisor must detect
            # the loss from the pipe alone.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            reply = _run_task(msg, graph, files, machines, backend,
                              validate, faults, retry, spill)
        except BaseException as error:  # noqa: BLE001 - shipped upstream
            reply = {
                "op": "error",
                "vid": msg["vid"],
                "slot": msg["slot"],
                "attempt": msg["attempt"],
                "retryable": isinstance(error, InjectedFault),
                "error": f"{type(error).__name__}: {error}",
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def _load_cut(spill, backend, relpaths, part):
    """Read one dependency's spilled partitions into a backend dataset.

    ``part`` selects a single partition for sliced tasks (the file
    granularity is per partition precisely so a slice reads only its
    own shard); ``None`` assembles the whole dataset.
    """
    wanted = [relpaths[part]] if part is not None else relpaths
    decoded = [decode_dataset(spill.read(p)) for p in wanted]
    first = decoded[0]
    assembled = ColumnarDataset(
        first.schema,
        [batch for d in decoded for batch in d.partitions],
        first.props,
    )
    return backend.from_wire(assembled)


def _run_task(msg, graph, files, machines, backend, validate, faults,
              retry, spill):
    vertex = graph.vertices[msg["vid"]]
    part = msg["part"]
    attempt = msg["attempt"]
    delay = retry.delay(attempt)
    if delay > 0.0:
        time.sleep(delay)
    started = time.perf_counter()
    if faults.should_fail(vertex.name, part, attempt):
        raise InjectedFault(
            f"injected fault in {vertex.name} "
            f"(part={part}, attempt={attempt})"
        )
    cuts = {
        node_id: _load_cut(spill, backend, msg["cuts"][dep_vid], part)
        for node_id, dep_vid in vertex.cut_nodes.items()
    }
    scratch = ExecutionMetrics()
    # A fresh per-task cluster shares the inherited input files but
    # collects OUTPUT writes privately, so only the supervisor-side
    # winner of a task commits them (exactly-once under re-dispatch).
    cluster = Cluster(machines=machines, files=files)
    executor = backend.fragment_cls(
        cluster, validate, scratch, cuts,
        slice_mode=part is not None,
    )
    result = executor._run(vertex.root)
    parts, rows = [], []
    for p in range(result.n_partitions):
        piece = type(result)(
            result.schema, [result.partitions[p]], result.props
        )
        relpath = spill.task_file(msg["vid"], msg["slot"], p, attempt)
        spill.write(relpath, encode_dataset(piece))
        parts.append(relpath)
        rows.append(len(result.partitions[p]))
    outputs = {
        path: encode_dataset(data)
        for path, data in cluster.outputs.items()
    }
    return {
        "op": "ok",
        "vid": msg["vid"],
        "slot": msg["slot"],
        "attempt": attempt,
        "parts": parts,
        "rows": rows,
        "outputs": outputs,
        "scratch": scratch,
        "started": started,
        "ended": time.perf_counter(),
    }
