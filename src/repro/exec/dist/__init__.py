"""Multiprocess distributed runtime: real processes, wire exchanges,
spill-to-disk, crash-fault tolerance.

The thread scheduler (:class:`~repro.exec.TaskScheduler`) proves the
stage-graph semantics but serializes CPU-bound kernels on the GIL and
keeps every exchange in one shared heap.  This package is the same
scheduler contract on the paper's actual substrate shape:

* :mod:`~repro.exec.dist.wire` — pinned-protocol columnar wire format
  for every byte that crosses a process boundary;
* :mod:`~repro.exec.dist.spill` — run-scoped spill directory with
  atomic partition files and an fsync'd commit manifest;
* :mod:`~repro.exec.dist.worker` — the forked worker loop (fragments
  execute against copy-on-write-inherited plans);
* :mod:`~repro.exec.dist.supervisor` — :class:`ProcessScheduler`, the
  dependency scheduler with worker-death detection, bounded
  re-dispatch from spill, and deterministic :class:`KillPlan`
  crash-fault injection.

Select it with ``execute_script(..., runtime="process", workers=N)``,
``QueryService.execute(runtime="process")`` or
``repro run --runtime process``.
"""

from .spill import MANIFEST_NAME, SpillStore, read_manifest
from .supervisor import KillPlan, ProcessScheduler, SpilledResult, WorkerLost
from .wire import (
    MAGIC,
    WIRE_PROTOCOL,
    WireError,
    decode_batch,
    decode_dataset,
    encode_batch,
    encode_dataset,
)

#: Names accepted by the ``runtime=`` knobs across api/service/CLI.
RUNTIME_NAMES = ("process", "thread")

__all__ = [
    "MAGIC",
    "MANIFEST_NAME",
    "RUNTIME_NAMES",
    "KillPlan",
    "ProcessScheduler",
    "SpillStore",
    "SpilledResult",
    "WIRE_PROTOCOL",
    "WireError",
    "WorkerLost",
    "decode_batch",
    "decode_dataset",
    "encode_batch",
    "encode_dataset",
    "read_manifest",
]
