"""Run-scoped spill directory: exchange partitions as files on disk.

The paper's substrate (Cosmos/Dryad) moves data between stages as
*files*, which is what makes vertices restartable: when a machine dies
mid-stage, the job manager re-runs only the lost vertex's tasks against
the inputs already materialized on disk.  :class:`SpillStore` is that
contract for the process runtime:

* every run gets its own directory (under ``--spill-dir`` or a fresh
  temp dir), named by a unique run id;
* workers write each output partition as a wire blob via temp-file +
  atomic rename, so a partition file either exists completely or not at
  all — a worker SIGKILLed mid-write can never leave a torn file that a
  consumer would read;
* file names carry the task attempt (``...-a0.bin``, ``...-a1.bin``),
  so a re-dispatched task never clobbers a dead attempt's bytes;
* the supervisor records every *committed* vertex in ``MANIFEST.json``,
  rewritten atomically and fsync'd per commit — after a crash the
  manifest names exactly the outputs that are safe to reuse;
* on success the whole directory is removed; on failure it is preserved
  (manifest included) for post-mortem inspection and artifact upload.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import uuid
from typing import Dict, List, Optional

MANIFEST_NAME = "MANIFEST.json"
#: Format marker inside the manifest, bumped on incompatible layout
#: changes so tooling can refuse stale directories.
MANIFEST_FORMAT = 1


class SpillStore:
    """One run's spill directory plus its fsync'd commit manifest."""

    def __init__(self, root: Optional[str] = None,
                 run_id: Optional[str] = None):
        self.run_id = run_id or f"run-{uuid.uuid4().hex[:12]}"
        if root is None:
            self.path = tempfile.mkdtemp(prefix=f"repro-spill-{self.run_id}-")
        else:
            self.path = os.path.join(root, self.run_id)
            os.makedirs(self.path, exist_ok=True)
        self._manifest: Dict[str, object] = {
            "format": MANIFEST_FORMAT,
            "run_id": self.run_id,
            "status": "running",
            "vertices": {},
        }
        self._write_manifest()

    # -- file layout -------------------------------------------------------

    def task_file(self, vid: int, slot: int, part: int,
                  attempt: int) -> str:
        """Relative path of one task attempt's output partition blob."""
        return f"v{vid:03d}/s{slot:03d}-p{part:03d}-a{attempt}.bin"

    def write(self, relpath: str, blob: bytes) -> None:
        """Write a wire blob atomically (temp file + rename).

        Called from worker processes; the pid-suffixed temp name keeps
        concurrent attempts of the same task from colliding.  Data files
        are not fsync'd — the manifest is the durability point, and a
        file the manifest doesn't reference is never read.
        """
        final = os.path.join(self.path, relpath)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        tmp = f"{final}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.rename(tmp, final)

    def read(self, relpath: str) -> bytes:
        with open(os.path.join(self.path, relpath), "rb") as handle:
            return handle.read()

    # -- manifest ----------------------------------------------------------

    def commit_vertex(self, vid: int, vertex: str, parts: List[str],
                      rows: List[int]) -> None:
        """Record a committed vertex's files (exactly-once marker)."""
        vertices = self._manifest["vertices"]
        vertices[str(vid)] = {
            "vertex": vertex,
            "parts": list(parts),
            "rows": list(rows),
        }
        self._write_manifest()

    def fail(self, error: str) -> None:
        self._manifest["status"] = "failed"
        self._manifest["error"] = error
        self._write_manifest()

    def finish(self) -> None:
        self._manifest["status"] = "complete"
        self._write_manifest()

    def manifest(self) -> Dict[str, object]:
        """The current manifest document (a deep-ish copy via JSON)."""
        return json.loads(json.dumps(self._manifest))

    def _write_manifest(self) -> None:
        final = os.path.join(self.path, MANIFEST_NAME)
        tmp = f"{final}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp, final)

    # -- lifecycle ---------------------------------------------------------

    def cleanup(self) -> None:
        """Remove the run directory (successful runs only)."""
        shutil.rmtree(self.path, ignore_errors=True)


def read_manifest(path: str) -> Dict[str, object]:
    """Load and validate a spill directory's manifest."""
    with open(os.path.join(path, MANIFEST_NAME)) as handle:
        doc = json.load(handle)
    if doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"unsupported spill manifest format {doc.get('format')!r} "
            f"in {path} (expected {MANIFEST_FORMAT})"
        )
    return doc
