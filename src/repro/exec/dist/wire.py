"""Compact pickled columnar wire format for exchanges and spill files.

Every byte that crosses a process boundary in the distributed runtime —
shuffle partitions spilled to disk, final outputs shipped back over the
worker pipe — is one *wire blob*: a fixed magic/version header followed
by a pickle (protocol pinned to :data:`WIRE_PROTOCOL`) of the payload in
**columnar** layout.  Column lists serialize as flat homogeneous Python
lists, which pickle at C speed; row-dict layouts would pay one dict per
row on both ends.

Two payload shapes exist:

* a bare :class:`~repro.exec.columnar.batch.ColumnBatch` —
  ``(n_rows, {column: [values...]})`` — the unit the property tests
  round-trip;
* a dataset — ``(schema, props, [batch payload, ...])`` — what workers
  write per spilled partition and what output blobs carry.

Encoding accepts either backend's dataset type (row partitions are
transposed on the way in); decoding always yields columnar objects, and
the selected :class:`~repro.exec.backend.Backend`'s ``from_wire`` hook
converts to the engine's native layout — the columnar backend consumes
wire data with no conversion at all.

The pickle protocol is pinned, not "highest available", so spill files
and worker replies stay byte-compatible between the Python minor
versions a mixed cluster might run.
"""

from __future__ import annotations

import pickle

from ..columnar.batch import ColumnarDataset, ColumnBatch

#: Pickle protocol every wire blob is written with.  Protocol 4 is
#: supported from Python 3.4 on; do not bump it casually — readers and
#: writers of one spill directory must agree.
WIRE_PROTOCOL = 4

#: Leading magic of every wire blob; the trailing digit is the format
#: version.  A mismatch means the blob is not ours (or from a future
#: incompatible format) and must fail loudly, never deserialize.
MAGIC = b"RPRW1\n"


class WireError(ValueError):
    """A wire blob failed structural validation."""


def _dumps(payload) -> bytes:
    return MAGIC + pickle.dumps(payload, protocol=WIRE_PROTOCOL)


def _loads(blob: bytes):
    if not blob.startswith(MAGIC):
        raise WireError(
            f"bad wire magic {blob[:len(MAGIC)]!r} (expected {MAGIC!r})"
        )
    return pickle.loads(blob[len(MAGIC):])


def _batch_payload(partition, names):
    """One partition (row list or ColumnBatch) -> payload tuple."""
    if isinstance(partition, ColumnBatch):
        return partition.n_rows, partition.columns
    batch = ColumnBatch.from_rows(names, partition)
    return batch.n_rows, batch.columns


def encode_batch(batch: ColumnBatch) -> bytes:
    """Serialize one :class:`ColumnBatch` to wire bytes."""
    return _dumps((batch.n_rows, batch.columns))


def decode_batch(blob: bytes) -> ColumnBatch:
    """Deserialize wire bytes produced by :func:`encode_batch`."""
    payload = _loads(blob)
    try:
        n_rows, columns = payload
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed batch payload: {payload!r}") from exc
    for name, values in columns.items():
        if len(values) != n_rows:
            raise WireError(
                f"column {name!r} has {len(values)} values "
                f"for a {n_rows}-row batch"
            )
    return ColumnBatch(columns, n_rows)


def encode_dataset(dataset) -> bytes:
    """Serialize a row or columnar dataset to wire bytes.

    Row partitions are transposed to columnar layout on the way in, so
    the on-disk format is identical whichever backend produced the data.
    """
    names = dataset.schema.names
    parts = [_batch_payload(p, names) for p in dataset.partitions]
    return _dumps((dataset.schema, dataset.props, parts))


def decode_dataset(blob: bytes) -> ColumnarDataset:
    """Deserialize wire bytes produced by :func:`encode_dataset`."""
    payload = _loads(blob)
    try:
        schema, props, parts = payload
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed dataset payload: {payload!r}") from exc
    return ColumnarDataset(
        schema,
        [ColumnBatch(columns, n_rows) for n_rows, columns in parts],
        props,
    )
