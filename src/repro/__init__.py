"""repro — reproduction of "Exploiting Common Subexpressions for Cloud
Query Processing" (Silva, Larson, Zhou; ICDE 2012).

Public API quick tour::

    from repro import Catalog, ColumnType, optimize_script

    catalog = Catalog()
    catalog.register_file("test.log", [("A", ColumnType.INT), ...], rows=10**6)
    result = optimize_script(script_text, catalog)          # CSE-aware
    baseline = optimize_script(script_text, catalog, exploit_cse=False)
    print(result.plan.pretty())
    print(result.cost, baseline.cost)

See ``examples/quickstart.py`` for an end-to-end walkthrough including
execution on the simulated cluster.
"""

from .api import (
    OptimizationResult,
    execute_batch,
    optimize_plan,
    optimize_script,
)
from .frontend import compile_text, detect_dialect, dialect_names
from .plan.columns import Column, ColumnType, Schema
from .scope.catalog import Catalog
from .scope.compiler import compile_script
from .sql import compile_sql, parse_sql
from .service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    ManualClock,
    QueryService,
    SystemClock,
)
from .verify import (
    PlanVerificationError,
    VerificationReport,
    check_plan,
    set_default_verify,
    verify_plan,
)

__version__ = "1.2.0"

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "Catalog",
    "Column",
    "ColumnType",
    "ManualClock",
    "OptimizationResult",
    "PlanVerificationError",
    "QueryService",
    "SystemClock",
    "Schema",
    "VerificationReport",
    "check_plan",
    "compile_script",
    "compile_sql",
    "compile_text",
    "detect_dialect",
    "dialect_names",
    "execute_batch",
    "optimize_plan",
    "optimize_script",
    "parse_sql",
    "set_default_verify",
    "verify_plan",
]
