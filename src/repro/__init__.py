"""repro — reproduction of "Exploiting Common Subexpressions for Cloud
Query Processing" (Silva, Larson, Zhou; ICDE 2012).

Public API quick tour::

    from repro import Catalog, ColumnType, optimize_script

    catalog = Catalog()
    catalog.register_file("test.log", [("A", ColumnType.INT), ...], rows=10**6)
    result = optimize_script(script_text, catalog)          # CSE-aware
    baseline = optimize_script(script_text, catalog, exploit_cse=False)
    print(result.plan.pretty())
    print(result.cost, baseline.cost)

See ``examples/quickstart.py`` for an end-to-end walkthrough including
execution on the simulated cluster.
"""

from .api import (
    OptimizationResult,
    execute_batch,
    optimize_plan,
    optimize_script,
)
from .plan.columns import Column, ColumnType, Schema
from .scope.catalog import Catalog
from .scope.compiler import compile_script
from .service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    ManualClock,
    QueryService,
    SystemClock,
)
from .verify import (
    PlanVerificationError,
    VerificationReport,
    check_plan,
    set_default_verify,
    verify_plan,
)

__version__ = "1.2.0"

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "Catalog",
    "Column",
    "ColumnType",
    "ManualClock",
    "OptimizationResult",
    "PlanVerificationError",
    "QueryService",
    "SystemClock",
    "Schema",
    "VerificationReport",
    "check_plan",
    "compile_script",
    "execute_batch",
    "optimize_plan",
    "optimize_script",
    "set_default_verify",
    "verify_plan",
]
