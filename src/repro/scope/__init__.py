"""SCOPE-like script frontend: lexer, parser, catalog and compiler."""

from .ast import Script
from .catalog import Catalog, FileStats
from .compiler import Compiler, compile_script
from .errors import CatalogError, LexError, ParseError, ResolutionError, ScopeError
from .lexer import Token, TokenKind, tokenize
from .parser import parse

__all__ = [
    "Catalog",
    "CatalogError",
    "Compiler",
    "FileStats",
    "LexError",
    "ParseError",
    "ResolutionError",
    "Script",
    "ScopeError",
    "Token",
    "TokenKind",
    "compile_script",
    "parse",
    "tokenize",
]
