"""Tokenizer for the SCOPE script subset.

Keywords are case-insensitive (the paper's scripts use upper case, SCOPE
accepts mixed case); identifiers are case-sensitive.  String literals
use double quotes with ``\\`` passing through verbatim so Windows-style
paths like ``"...\\test.log"`` from the paper lex unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = {
    "EXTRACT",
    "FROM",
    "USING",
    "SELECT",
    "AS",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "OUTPUT",
    "TO",
    "AND",
    "OR",
    "NOT",
    "UNION",
    "ALL",
    "DISTINCT",
    "ORDER",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "TOP",
}

SYMBOLS = (
    # Longest first so <= beats <.
    "<=",
    ">=",
    "<>",
    "=",
    "<",
    ">",
    "(",
    ")",
    ",",
    ";",
    "*",
    ".",
    "+",
    "-",
    "/",
)


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def is_symbol(self, sym: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.value == sym

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is TokenKind.EOF:
            return "<end of script>"
        return repr(self.value)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        col = pos - line_start + 1
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("//", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if ch == '"':
            end = text.find('"', pos + 1)
            if end == -1:
                raise LexError("unterminated string literal", line, col)
            yield Token(TokenKind.STRING, text[pos + 1 : end], line, col)
            pos = end + 1
            continue
        if ch.isdigit():
            start = pos
            while pos < n and (text[pos].isdigit() or text[pos] == "."):
                pos += 1
            yield Token(TokenKind.NUMBER, text[start:pos], line, col)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            if word.upper() in KEYWORDS:
                yield Token(TokenKind.KEYWORD, word.upper(), line, col)
            else:
                yield Token(TokenKind.IDENT, word, line, col)
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, pos):
                yield Token(TokenKind.SYMBOL, sym, line, col)
                pos += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenKind.EOF, "", line, n - line_start + 1)
