"""Recursive-descent parser for the SCOPE script subset.

Grammar (EBNF, keywords case-insensitive)::

    script      := statement* EOF
    statement   := assignment | output
    assignment  := IDENT '=' (extract | select ('UNION' 'ALL' select)*) ';'
    extract     := 'EXTRACT' ident_list 'FROM' STRING 'USING' IDENT
    select      := 'SELECT' ['DISTINCT'] ['TOP' NUMBER] select_items
                   'FROM' from_list ['WHERE' expr]
                   ['GROUP' 'BY' ref_list] ['HAVING' expr]
                   ['ORDER' 'BY' ref_list]   (required with TOP)
    select_items:= select_item (',' select_item)*
    select_item := expr ['AS' IDENT]
    from_list   := from_rel (',' from_rel)* join_clause*
    join_clause := (('LEFT' ['OUTER']) | 'INNER')? 'JOIN' from_rel 'ON' expr
    from_rel    := IDENT ['AS' IDENT]
    output      := 'OUTPUT' IDENT 'TO' STRING ['ORDER' 'BY' ref_list] ';'
    expr        := or_expr
    or_expr     := and_expr ('OR' and_expr)*
    and_expr    := not_expr ('AND' not_expr)*
    not_expr    := 'NOT' not_expr | cmp_expr
    cmp_expr    := add_expr (('='|'<>'|'<'|'<='|'>'|'>=') add_expr)?
    add_expr    := mul_expr (('+'|'-') mul_expr)*
    mul_expr    := primary (('*'|'/') primary)*
    primary     := NUMBER | STRING | ref | call | '(' expr ')'
    call        := IDENT '(' ('*' | ['DISTINCT'] expr) ')'
    ref         := IDENT ['.' IDENT]

This covers every script in the paper (S1–S4 verbatim) plus filters,
arithmetic, HAVING and UNION ALL for the examples and workload
generators.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    EBin,
    ECall,
    EExpr,
    ELit,
    ENot,
    ERef,
    ExtractStmt,
    FromRel,
    JoinClause,
    OutputStmt,
    Script,
    SelectItem,
    SelectQuery,
    SelectStmt,
    Statement,
)
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._cur
        return ParseError(f"{message}, found {tok}", tok.line, tok.column)

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_symbol(self, sym: str) -> Token:
        if not self._cur.is_symbol(sym):
            raise self._error(f"expected {sym!r}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> str:
        if self._cur.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance().value

    def _expect_string(self, what: str = "string literal") -> str:
        if self._cur.kind is not TokenKind.STRING:
            raise self._error(f"expected {what}")
        return self._advance().value

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, sym: str) -> bool:
        if self._cur.is_symbol(sym):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------

    def parse_script(self) -> Script:
        statements: List[Statement] = []
        while self._cur.kind is not TokenKind.EOF:
            statements.append(self._statement())
        if not statements:
            raise self._error("empty script")
        return Script(statements)

    def _statement(self) -> Statement:
        if self._cur.is_keyword("OUTPUT"):
            return self._output()
        target = self._expect_ident("assignment target")
        self._expect_symbol("=")
        if self._cur.is_keyword("EXTRACT"):
            stmt = self._extract(target)
        elif self._cur.is_keyword("SELECT"):
            stmt = self._select_stmt(target)
        else:
            raise self._error("expected EXTRACT or SELECT")
        self._expect_symbol(";")
        return stmt

    def _output(self) -> OutputStmt:
        self._expect_keyword("OUTPUT")
        source = self._expect_ident("relation name")
        self._expect_keyword("TO")
        path = self._expect_string("output path")
        order = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order.append(self._ref())
            while self._accept_symbol(","):
                order.append(self._ref())
        self._expect_symbol(";")
        return OutputStmt(source, path, tuple(order))

    def _extract(self, target: str) -> ExtractStmt:
        self._expect_keyword("EXTRACT")
        columns = [self._expect_ident("column name")]
        while self._accept_symbol(","):
            columns.append(self._expect_ident("column name"))
        self._expect_keyword("FROM")
        path = self._expect_string("input path")
        self._expect_keyword("USING")
        extractor = self._expect_ident("extractor name")
        return ExtractStmt(target, tuple(columns), path, extractor)

    def _select_stmt(self, target: str) -> SelectStmt:
        queries = [self._select_query()]
        while self._cur.is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            queries.append(self._select_query())
        return SelectStmt(target, tuple(queries))

    def _select_query(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        top = None
        if self._accept_keyword("TOP"):
            if self._cur.kind is not TokenKind.NUMBER:
                raise self._error("expected a row count after TOP")
            top = int(self._advance().value)
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        from_rels = [self._from_rel()]
        while self._accept_symbol(","):
            from_rels.append(self._from_rel())
        joins = []
        while self._cur.is_keyword("JOIN") or self._cur.is_keyword("LEFT") \
                or self._cur.is_keyword("INNER"):
            joins.append(self._join_clause())
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: Tuple[ERef, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            refs = [self._ref()]
            while self._accept_symbol(","):
                refs.append(self._ref())
            group_by = tuple(refs)
        having = self._expr() if self._accept_keyword("HAVING") else None
        top_order = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            top_order.append(self._ref())
            while self._accept_symbol(","):
                top_order.append(self._ref())
        if top is not None and not top_order:
            raise self._error(
                "SELECT TOP requires an ORDER BY for deterministic results"
            )
        return SelectQuery(
            tuple(items), tuple(from_rels), where, group_by, having, distinct,
            tuple(joins), top, tuple(top_order),
        )

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        return SelectItem(expr, alias)

    def _join_clause(self) -> JoinClause:
        kind = "inner"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "left"
        elif self._accept_keyword("INNER"):
            pass
        self._expect_keyword("JOIN")
        rel = self._from_rel()
        self._expect_keyword("ON")
        condition = self._expr()
        return JoinClause(rel, condition, kind)

    def _from_rel(self) -> FromRel:
        name = self._expect_ident("relation name")
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("relation alias")
        return FromRel(name, alias)

    # -- expressions ----------------------------------------------------

    def _expr(self) -> EExpr:
        return self._or_expr()

    def _or_expr(self) -> EExpr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = EBin("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> EExpr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = EBin("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> EExpr:
        if self._accept_keyword("NOT"):
            return ENot(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> EExpr:
        left = self._add_expr()
        for op in _COMPARISONS:
            if self._cur.is_symbol(op):
                self._advance()
                return EBin(op, left, self._add_expr())
        return left

    def _add_expr(self) -> EExpr:
        left = self._mul_expr()
        while self._cur.is_symbol("+") or self._cur.is_symbol("-"):
            op = self._advance().value
            left = EBin(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> EExpr:
        left = self._primary()
        while self._cur.is_symbol("*") or self._cur.is_symbol("/"):
            op = self._advance().value
            left = EBin(op, left, self._primary())
        return left

    def _primary(self) -> EExpr:
        tok = self._cur
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            if "." in tok.value:
                return ELit(float(tok.value))
            return ELit(int(tok.value))
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ELit(tok.value)
        if tok.is_symbol("("):
            self._advance()
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if tok.kind is TokenKind.IDENT:
            # Either a function call, a qualified ref, or a bare ref.
            name = self._advance().value
            if self._accept_symbol("("):
                if self._accept_symbol("*"):
                    self._expect_symbol(")")
                    return ECall(name, None)
                distinct = self._accept_keyword("DISTINCT")
                arg = self._expr()
                self._expect_symbol(")")
                return ECall(name, arg, distinct)
            if self._accept_symbol("."):
                column = self._expect_ident("column name")
                return ERef(column, qualifier=name)
            return ERef(name)
        raise self._error("expected expression")

    def _ref(self) -> ERef:
        name = self._expect_ident("column reference")
        if self._accept_symbol("."):
            column = self._expect_ident("column name")
            return ERef(column, qualifier=name)
        return ERef(name)


def parse(text: str) -> Script:
    """Parse a SCOPE script into its AST."""
    return Parser(text).parse_script()
