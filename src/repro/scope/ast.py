"""Abstract syntax tree of the SCOPE script subset.

The parser produces these nodes; the compiler resolves names against the
environment/catalog and lowers them into the logical algebra
(``repro.plan.logical``).  Expression AST nodes are distinct from the
plan-level expressions because they may still contain *qualified*
references (``R1.B``) and un-resolved aggregate calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class EExpr:
    """Base class of AST expressions."""


@dataclass(frozen=True)
class ERef(EExpr):
    """Column reference, optionally qualified: ``B`` or ``R1.B``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class ELit(EExpr):
    """Numeric or string literal."""

    value: Union[int, float, str]


@dataclass(frozen=True)
class EBin(EExpr):
    """Binary expression; ``op`` is the surface-syntax operator string."""

    op: str
    left: EExpr
    right: EExpr


@dataclass(frozen=True)
class ENot(EExpr):
    operand: EExpr


@dataclass(frozen=True)
class ECall(EExpr):
    """Function call — in this subset always an aggregate.

    ``arg`` is ``None`` for ``COUNT(*)``; ``distinct`` marks
    ``COUNT(DISTINCT expr)``.
    """

    func: str
    arg: Optional[EExpr]
    distinct: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list: an expression with an optional alias."""

    expr: EExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class FromRel:
    """A FROM-clause relation reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """An ANSI join step: ``[LEFT [OUTER] | INNER] JOIN rel ON cond``."""

    rel: FromRel
    condition: EExpr
    #: "inner" or "left".
    kind: str = "inner"


@dataclass(frozen=True)
class SelectQuery:
    """The body of one SELECT (no assignment target)."""

    items: Tuple[SelectItem, ...]
    from_rels: Tuple[FromRel, ...]
    where: Optional[EExpr] = None
    group_by: Tuple[ERef, ...] = ()
    having: Optional[EExpr] = None
    #: SELECT DISTINCT: deduplicate the result rows.
    distinct: bool = False
    #: ANSI JOIN steps applied (left-deep) after the comma-joined rels.
    joins: Tuple["JoinClause", ...] = ()
    #: ``SELECT TOP n ... ORDER BY cols``: keep the first ``top`` rows
    #: of the (deterministic) total order.  ``None`` = no limit.
    top: "Optional[int]" = None
    #: The ORDER BY of a TOP query (required when ``top`` is set).
    top_order: Tuple[ERef, ...] = ()


class Statement:
    """Base class of script statements."""


@dataclass(frozen=True)
class ExtractStmt(Statement):
    """``name = EXTRACT cols FROM "path" USING Extractor;``"""

    target: str
    columns: Tuple[str, ...]
    path: str
    extractor: str


@dataclass(frozen=True)
class SelectStmt(Statement):
    """``name = SELECT ... [UNION ALL SELECT ...];``

    ``queries`` has one entry per UNION ALL branch (usually one).
    """

    target: str
    queries: Tuple[SelectQuery, ...]


@dataclass(frozen=True)
class OutputStmt(Statement):
    """``OUTPUT name TO "path" [ORDER BY cols];``

    A non-empty ``order_by`` requests a globally sorted output file.
    """

    source: str
    path: str
    order_by: Tuple[ERef, ...] = ()


@dataclass
class Script:
    """A parsed script: an ordered list of statements."""

    statements: List[Statement] = field(default_factory=list)

    def targets(self) -> List[str]:
        """Assignment targets in script order."""
        return [
            s.target
            for s in self.statements
            if isinstance(s, (ExtractStmt, SelectStmt))
        ]
