"""Equi-depth histograms for selectivity estimation.

The default estimator uses magic constants for range predicates (1/3 for
``col > k``).  A histogram built from data — or from a declared domain —
replaces the guess with a measured distribution: ``selectivity(op, k)``
returns the fraction of rows satisfying ``col op k``.

Buckets are equi-depth (equal row counts per bucket), the standard
choice for skewed data; each bucket records its inclusive bounds, row
count and distinct-value count, supporting equality estimates via the
uniform-within-bucket assumption.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..plan.expressions import BinaryOp

DEFAULT_BUCKETS = 32


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: ``[low, high]`` inclusive."""

    low: float
    high: float
    rows: int
    distinct: int


class Histogram:
    """An equi-depth histogram over one numeric column."""

    def __init__(self, buckets: Sequence[Bucket], total_rows: int):
        self.buckets: Tuple[Bucket, ...] = tuple(buckets)
        self.total_rows = total_rows
        self._highs = [b.high for b in self.buckets]

    # -- construction -----------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[float],
                    n_buckets: int = DEFAULT_BUCKETS) -> "Histogram":
        """Build from concrete values (exact equi-depth split)."""
        cleaned = sorted(v for v in values if v is not None)
        if not cleaned:
            raise ValueError("cannot build a histogram from no values")
        total = len(cleaned)
        n_buckets = max(1, min(n_buckets, total))
        buckets: List[Bucket] = []
        step = total / n_buckets
        start = 0
        for i in range(n_buckets):
            end = int(round((i + 1) * step))
            end = min(max(end, start + 1), total)
            chunk = cleaned[start:end]
            if not chunk:
                continue
            # Never split equal values across buckets: extend to cover
            # the run of the boundary value.
            while end < total and cleaned[end] == chunk[-1]:
                chunk.append(cleaned[end])
                end += 1
            buckets.append(
                Bucket(
                    low=float(chunk[0]),
                    high=float(chunk[-1]),
                    rows=len(chunk),
                    distinct=len(set(chunk)),
                )
            )
            start = end
            if start >= total:
                break
        return cls(buckets, total)

    # -- estimation ---------------------------------------------------------

    def _fraction_below(self, value: float, inclusive: bool) -> float:
        """Fraction of rows with ``col < value`` (or ``<=``)."""
        rows = 0.0
        for bucket in self.buckets:
            if bucket.high < value or (inclusive and bucket.high == value):
                rows += bucket.rows
            elif bucket.low > value or (not inclusive and bucket.low == value):
                break
            else:
                # Partial bucket: linear interpolation within the range.
                width = bucket.high - bucket.low
                if width <= 0:
                    covered = 1.0 if (inclusive or value > bucket.low) else 0.0
                else:
                    covered = (value - bucket.low) / width
                    if inclusive:
                        covered += 1.0 / max(bucket.distinct, 1)
                rows += bucket.rows * max(0.0, min(1.0, covered))
        return min(1.0, rows / self.total_rows) if self.total_rows else 0.0

    def selectivity_eq(self, value: float) -> float:
        index = bisect.bisect_left(self._highs, value)
        if index >= len(self.buckets):
            return 0.0
        bucket = self.buckets[index]
        if not (bucket.low <= value <= bucket.high):
            return 0.0
        per_value = bucket.rows / max(bucket.distinct, 1)
        return min(1.0, per_value / self.total_rows)

    def selectivity(self, op: BinaryOp, value: float) -> Optional[float]:
        """Selectivity of ``col op value``; None for unsupported ops."""
        if op is BinaryOp.EQ:
            return self.selectivity_eq(value)
        if op is BinaryOp.NE:
            return max(0.0, 1.0 - self.selectivity_eq(value))
        if op is BinaryOp.LT:
            return self._fraction_below(value, inclusive=False)
        if op is BinaryOp.LE:
            return self._fraction_below(value, inclusive=True)
        if op is BinaryOp.GT:
            return max(0.0, 1.0 - self._fraction_below(value, inclusive=True))
        if op is BinaryOp.GE:
            return max(0.0, 1.0 - self._fraction_below(value, inclusive=False))
        return None

    # -- (de)serialization ------------------------------------------------------

    def to_list(self) -> List[dict]:
        return [
            {"low": b.low, "high": b.high, "rows": b.rows,
             "distinct": b.distinct}
            for b in self.buckets
        ]

    @classmethod
    def from_list(cls, items: Sequence[dict]) -> "Histogram":
        buckets = [
            Bucket(
                low=float(item["low"]),
                high=float(item["high"]),
                rows=int(item["rows"]),
                distinct=int(item["distinct"]),
            )
            for item in items
        ]
        total = sum(b.rows for b in buckets)
        return cls(buckets, total)

    def __len__(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram({len(self.buckets)} buckets, "
            f"{self.total_rows} rows, "
            f"[{self.buckets[0].low}, {self.buckets[-1].high}])"
        )
