"""User-facing errors raised by the SCOPE frontend."""

from __future__ import annotations


class ScopeError(Exception):
    """Base class for all frontend errors."""


class LexError(ScopeError):
    """Invalid character or malformed token in a script."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"lex error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(ScopeError):
    """Script does not match the grammar."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"parse error at {line}:{column}: {message}")
        self.line = line
        self.column = column


class ResolutionError(ScopeError):
    """Name resolution failure (unknown relation/column, ambiguity...)."""


class CatalogError(ScopeError):
    """Unknown input file or inconsistent registration."""
