"""User-facing errors raised by the SCOPE frontend.

Rooted in :mod:`repro.frontend.errors` so SCOPE and SQL scripts report
identical-looking diagnostics (message + line/column + source excerpt);
message formats are unchanged from the pre-registry frontend.
"""

from __future__ import annotations

from ..frontend.errors import FrontendError, LocatedError


class ScopeError(FrontendError):
    """Base class for all SCOPE frontend errors."""


class LexError(LocatedError, ScopeError):
    """Invalid character or malformed token in a script."""

    kind = "lex error"


class ParseError(LocatedError, ScopeError):
    """Script does not match the grammar."""

    kind = "parse error"


class ResolutionError(ScopeError):
    """Name resolution failure (unknown relation/column, ambiguity...)."""


class CatalogError(ScopeError):
    """Unknown input file or inconsistent registration."""
