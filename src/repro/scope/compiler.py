"""Compile a parsed SCOPE script into a logical operator DAG.

The compiler performs name resolution against the statement environment
and the catalog, lowers SELECT blocks into Filter/Join/GroupBy/Project
chains, and stitches the script's OUTPUT statements together under a
Sequence root (paper, Section I: "If a script has several terminal
operators ... they are connected by a Sequence operator").

Relations assigned earlier in the script are looked up *by object*, so a
relation consumed twice becomes one DAG node with two parents — the
explicitly-given common subexpressions of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..plan.columns import Schema
from ..plan.expressions import (
    AggFunc,
    Aggregate,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    NamedExpr,
    NotExpr,
)
from ..plan.logical import (
    JoinKind,
    LogicalExtract,
    LogicalTopN,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOutput,
    LogicalPlan,
    LogicalProject,
    LogicalSequence,
    LogicalUnionAll,
)
from .ast import (
    EBin,
    ECall,
    EExpr,
    ELit,
    ENot,
    ERef,
    ExtractStmt,
    JoinClause,
    OutputStmt,
    Script,
    SelectItem,
    SelectQuery,
    SelectStmt,
)
from .catalog import Catalog
from .errors import ResolutionError
from .parser import parse

_AGG_FUNCS = {f.value.upper(): f for f in AggFunc}

_BINOPS = {op.value: op for op in BinaryOp}


@dataclass
class _Binding:
    """A FROM-clause relation inside one SELECT scope.

    ``columns`` maps the relation's own column names to their resolved
    names in the combined join schema (identical unless a clash forced a
    rename like ``R2.B``).
    """

    name: str
    plan: LogicalPlan
    columns: Dict[str, str]


class _Scope:
    """Name-resolution scope of one SELECT block."""

    def __init__(self, bindings: List[_Binding]):
        self.bindings = bindings

    def resolve(self, ref: ERef) -> str:
        """Resolve a (possibly qualified) reference to a schema name."""
        if ref.qualifier is not None:
            for binding in self.bindings:
                if binding.name == ref.qualifier:
                    resolved = binding.columns.get(ref.name)
                    if resolved is None:
                        raise ResolutionError(
                            f"relation {ref.qualifier} has no column {ref.name}"
                        )
                    return resolved
            raise ResolutionError(f"unknown relation qualifier {ref.qualifier!r}")
        matches = [
            b.columns[ref.name] for b in self.bindings if ref.name in b.columns
        ]
        if not matches:
            raise ResolutionError(f"unknown column {ref.name!r}")
        if len(set(matches)) > 1:
            raise ResolutionError(
                f"ambiguous column {ref.name!r}; qualify it (e.g. R1.{ref.name})"
            )
        return matches[0]


def _lower_scalar(expr: EExpr, scope: _Scope) -> Expr:
    """Lower a scalar (non-aggregate) AST expression to a plan expression."""
    if isinstance(expr, ERef):
        return ColumnRef(scope.resolve(expr))
    if isinstance(expr, ELit):
        return Literal(expr.value)
    if isinstance(expr, ENot):
        return NotExpr(_lower_scalar(expr.operand, scope))
    if isinstance(expr, EBin):
        op = _BINOPS.get(expr.op)
        if op is None:
            raise ResolutionError(f"unsupported operator {expr.op!r}")
        return BinaryExpr(
            op, _lower_scalar(expr.left, scope), _lower_scalar(expr.right, scope)
        )
    if isinstance(expr, ECall):
        raise ResolutionError(
            f"aggregate {expr.func} is not allowed here (only in SELECT items)"
        )
    raise ResolutionError(f"unsupported expression {expr!r}")


def _contains_aggregate(expr: EExpr) -> bool:
    if isinstance(expr, ECall):
        return True
    if isinstance(expr, EBin):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ENot):
        return _contains_aggregate(expr.operand)
    return False


class Compiler:
    """Compiles statements in script order, threading the environment."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._env: Dict[str, LogicalPlan] = {}
        self._outputs: List[LogicalPlan] = []

    # -- public entry points -------------------------------------------

    def compile_script(self, script: Script) -> LogicalPlan:
        for stmt in script.statements:
            self.add_statement(stmt)
        return self.finish()

    def add_statement(self, stmt) -> None:
        """Compile one statement into the threaded environment.

        The incremental entry point other frontends drive: the SQL
        compiler desugars its AST into SCOPE statements and feeds them
        here one at a time, so both dialects share a single
        name-resolution and lowering path (and hence produce identical
        DAGs for equivalent queries).
        """
        if isinstance(stmt, ExtractStmt):
            self._env[stmt.target] = self._compile_extract(stmt)
        elif isinstance(stmt, SelectStmt):
            self._env[stmt.target] = self._compile_select(stmt)
        elif isinstance(stmt, OutputStmt):
            self._outputs.append(self._compile_output(stmt))
        else:  # pragma: no cover - parsers produce no other kinds
            raise ResolutionError(f"unsupported statement {stmt!r}")

    def define(self, name: str, plan: LogicalPlan) -> None:
        """Bind ``name`` to an already-compiled plan in the environment."""
        self._env[name] = plan

    def lookup(self, name: str) -> Optional[LogicalPlan]:
        """The plan bound to ``name``, or ``None``."""
        return self._env.get(name)

    def finish(self) -> LogicalPlan:
        """Stitch the accumulated OUTPUT statements under one root."""
        if not self._outputs:
            raise ResolutionError("script has no OUTPUT statement")
        if len(self._outputs) == 1:
            return self._outputs[0]
        return LogicalPlan(
            LogicalSequence(len(self._outputs)), list(self._outputs)
        )

    # -- statements -----------------------------------------------------

    def _compile_extract(self, stmt: ExtractStmt) -> LogicalPlan:
        stats = self._catalog.lookup(stmt.path)
        missing = [c for c in stmt.columns if c not in stats.schema]
        if missing:
            raise ResolutionError(
                f"extract columns {missing} not in registered schema of {stmt.path!r}"
            )
        schema = stats.schema.project(stmt.columns)
        op = LogicalExtract(stats.file_id, stmt.path, stmt.extractor, schema)
        return LogicalPlan(op, [])

    def _compile_output(self, stmt: OutputStmt) -> LogicalPlan:
        child = self._env.get(stmt.source)
        if child is None:
            raise ResolutionError(f"OUTPUT of unknown relation {stmt.source!r}")
        order = []
        for ref in stmt.order_by:
            if ref.qualifier is not None:
                raise ResolutionError(
                    "OUTPUT ORDER BY takes unqualified column names"
                )
            if ref.name not in child.schema:
                raise ResolutionError(
                    f"OUTPUT ORDER BY column {ref.name!r} not in "
                    f"{stmt.source!r}"
                )
            order.append(ref.name)
        return LogicalPlan(LogicalOutput(stmt.path, tuple(order)), [child])

    def _compile_select(self, stmt: SelectStmt) -> LogicalPlan:
        branches = [self._compile_query(q) for q in stmt.queries]
        if len(branches) == 1:
            return branches[0]
        first_schema = branches[0].schema
        aligned = [branches[0]]
        for branch in branches[1:]:
            if len(branch.schema) != len(first_schema):
                raise ResolutionError("UNION ALL branches differ in arity")
            if branch.schema.names != first_schema.names:
                renames = tuple(
                    NamedExpr(ColumnRef(src.name), dst.name)
                    for src, dst in zip(branch.schema, first_schema)
                )
                branch = LogicalPlan(LogicalProject(renames), [branch])
            aligned.append(branch)
        return LogicalPlan(LogicalUnionAll(len(aligned)), aligned)

    # -- SELECT lowering --------------------------------------------------

    def _compile_query(self, query: SelectQuery) -> LogicalPlan:
        plan, scope, join_filters = self._compile_from_where(query)
        if join_filters:
            plan = LogicalPlan(LogicalFilter(_and_all(join_filters)), [plan])

        has_aggs = any(_contains_aggregate(item.expr) for item in query.items)
        if query.group_by or has_aggs:
            if query.distinct:
                raise ResolutionError(
                    "SELECT DISTINCT cannot be combined with GROUP BY or "
                    "aggregates (the grouped result is already distinct)"
                )
            plan = self._compile_aggregation(query, plan, scope)
        else:
            if query.having is not None:
                raise ResolutionError(
                    "HAVING requires GROUP BY or aggregates"
                )
            plan = self._projection(query.items, plan, scope)
            if query.distinct:
                dedup = LogicalGroupBy(tuple(plan.schema.names), ())
                plan = LogicalPlan(dedup, [plan])
        if query.top is not None:
            plan = self._apply_top(query, plan)
        return plan

    def _apply_top(self, query: SelectQuery, plan: LogicalPlan) -> LogicalPlan:
        """Wrap the SELECT result in a TOP-N over its output columns."""
        order = []
        for ref in query.top_order:
            if ref.qualifier is not None:
                raise ResolutionError(
                    "TOP ... ORDER BY takes output column names (no "
                    "qualifiers)"
                )
            if ref.name not in plan.schema:
                raise ResolutionError(
                    f"TOP ORDER BY column {ref.name!r} is not produced by "
                    "this SELECT"
                )
            order.append(ref.name)
        return LogicalPlan(LogicalTopN(query.top, tuple(order)), [plan])

    def _compile_from_where(
        self, query: SelectQuery
    ) -> Tuple[LogicalPlan, _Scope, List[Expr]]:
        """Build the join tree and classify WHERE conjuncts.

        Returns the joined plan, the resolution scope, and the residual
        (non-join) predicates, already lowered.
        """
        seen = set()
        for rel in query.from_rels:
            if rel.binding in seen:
                raise ResolutionError(
                    f"duplicate relation binding {rel.binding!r}; use AS aliases"
                )
            seen.add(rel.binding)

        bindings: List[_Binding] = []
        for rel in query.from_rels:
            child = self._env.get(rel.name)
            if child is None:
                raise ResolutionError(f"unknown relation {rel.name!r} in FROM")
            bindings.append(
                _Binding(rel.binding, child, {c: c for c in child.schema.names})
            )

        conjuncts = _split_conjuncts(query.where) if query.where else []
        consumed = [False] * len(conjuncts)

        plan = bindings[0].plan
        joined = [bindings[0]]
        for binding in bindings[1:]:
            plan = self._join_in(plan, joined, binding, conjuncts, consumed)
            joined.append(binding)

        for clause in query.joins:
            plan = self._ansi_join_in(plan, joined, clause)

        scope = _Scope(joined)

        residual = [
            _lower_scalar(conj, scope)
            for conj, used in zip(conjuncts, consumed)
            if not used
        ]
        return plan, scope, residual

    def _ansi_join_in(
        self,
        left_plan: LogicalPlan,
        joined: List[_Binding],
        clause: JoinClause,
    ) -> LogicalPlan:
        """Apply one ``[LEFT] JOIN rel ON cond`` step (left-deep)."""
        if any(b.name == clause.rel.binding for b in joined):
            raise ResolutionError(
                f"duplicate relation binding {clause.rel.binding!r}; "
                "use AS aliases"
            )
        child = self._env.get(clause.rel.name)
        if child is None:
            raise ResolutionError(
                f"unknown relation {clause.rel.name!r} in JOIN"
            )
        binding = _Binding(
            clause.rel.binding, child, {c: c for c in child.schema.names}
        )
        on_conjuncts = _split_conjuncts(clause.condition)
        consumed = [False] * len(on_conjuncts)
        kind = JoinKind.LEFT if clause.kind == "left" else JoinKind.INNER
        plan = self._join_in(
            left_plan, joined, binding, on_conjuncts, consumed, kind
        )
        joined.append(binding)
        leftovers = [c for c, used in zip(on_conjuncts, consumed) if not used]
        if leftovers:
            # Residual non-equi ON predicates change outer-join semantics
            # (they are not WHERE filters); keep the language honest.
            raise ResolutionError(
                "JOIN ... ON supports only equality predicates between "
                f"the two sides; cannot handle {leftovers[0]!r}"
            )
        return plan

    def _join_in(
        self,
        left_plan: LogicalPlan,
        joined: List[_Binding],
        right: _Binding,
        conjuncts: List[EExpr],
        consumed: List[bool],
        kind: JoinKind = JoinKind.INNER,
    ) -> LogicalPlan:
        """Join ``right`` into the accumulated left side.

        Renames clashing right-side columns (``R2.B``) and consumes the
        WHERE conjuncts that are equi-predicates between the two sides.
        """
        left_names = set()
        for binding in joined:
            left_names.update(binding.columns.values())

        renames: Dict[str, str] = {}
        for col in right.plan.schema.names:
            renames[col] = f"{right.name}.{col}" if col in left_names else col
        right_plan = right.plan
        if any(src != dst for src, dst in renames.items()):
            exprs = tuple(
                NamedExpr(ColumnRef(col), renames[col])
                for col in right.plan.schema.names
            )
            right_plan = LogicalPlan(LogicalProject(exprs), [right_plan])
        right.columns = dict(renames)

        left_scope = _Scope(joined)
        left_keys: List[str] = []
        right_keys: List[str] = []
        for idx, conj in enumerate(conjuncts):
            if consumed[idx]:
                continue
            pair = _equi_pair(conj)
            if pair is None:
                continue
            a, b = pair
            sides = (_try_side(a, left_scope, right), _try_side(b, left_scope, right))
            if sides == ("left", "right"):
                left_keys.append(left_scope.resolve(a))
                right_keys.append(right.columns[b.name])
            elif sides == ("right", "left"):
                left_keys.append(left_scope.resolve(b))
                right_keys.append(right.columns[a.name])
            else:
                continue
            consumed[idx] = True
        if not left_keys:
            raise ResolutionError(
                f"no equi-join predicate connects {right.name!r} to the FROM "
                "relations before it (cross joins are not supported)"
            )
        op = LogicalJoin(tuple(left_keys), tuple(right_keys), kind)
        return LogicalPlan(op, [left_plan, right_plan])

    # -- aggregation ------------------------------------------------------

    def _compile_aggregation(
        self, query: SelectQuery, plan: LogicalPlan, scope: _Scope
    ) -> LogicalPlan:
        if any(
            isinstance(item.expr, ECall) and item.expr.distinct
            for item in query.items
        ):
            return self._compile_distinct_count(query, plan, scope)
        keys = tuple(scope.resolve(ref) for ref in query.group_by)
        key_set = set(keys)

        aggregates: List[Aggregate] = []
        out_items: List[NamedExpr] = []
        for item in query.items:
            expr = item.expr
            if isinstance(expr, ECall):
                out_items.append(
                    self._lower_aggregate(expr, item.alias, scope, aggregates)
                )
            elif _contains_aggregate(expr):
                raise ResolutionError(
                    "aggregates may not be nested inside scalar expressions; "
                    "compute them with AS aliases first"
                )
            else:
                lowered = _lower_scalar(expr, scope)
                refs = lowered.referenced_columns()
                if not refs <= key_set:
                    bad = sorted(refs - key_set)
                    raise ResolutionError(
                        f"non-aggregated columns {bad} must appear in GROUP BY"
                    )
                alias = item.alias or _default_alias(expr)
                out_items.append(NamedExpr(lowered, alias))

        having_pred = None
        if query.having is not None:
            # HAVING may reference output aliases or aggregate calls
            # directly (``HAVING Sum(D) > 5``); direct calls reuse an
            # existing aggregate when one matches, otherwise a hidden
            # aggregate is added for the duration of the filter.
            having_expr = self._rewrite_having_aggregates(
                query.having, scope, aggregates
            )
            having_pred = having_expr

        gb = LogicalGroupBy(keys, tuple(aggregates))
        plan = LogicalPlan(gb, [plan])

        if having_pred is not None:
            having_scope = _Scope(
                [_Binding("", plan, {c: c for c in plan.schema.names})]
            )
            plan = LogicalPlan(
                LogicalFilter(_lower_scalar(having_pred, having_scope)),
                [plan],
            )

        if _needs_projection(out_items, plan.schema):
            plan = LogicalPlan(LogicalProject(tuple(out_items)), [plan])
        return plan

    def _rewrite_having_aggregates(
        self,
        expr: EExpr,
        scope: _Scope,
        aggregates: List[Aggregate],
    ) -> EExpr:
        """Replace aggregate calls in HAVING with alias references.

        A call matching an aggregate already computed by the SELECT
        reuses its alias; otherwise a hidden aggregate (named
        ``__having<i>``) is appended so the filter can reference it.
        Hidden aggregates are dropped again by the final projection.
        """
        if isinstance(expr, ECall):
            if expr.distinct:
                raise ResolutionError(
                    "COUNT(DISTINCT ...) is not supported in HAVING"
                )
            func = _AGG_FUNCS.get(expr.func.upper())
            if func is None:
                raise ResolutionError(
                    f"unknown aggregate function {expr.func!r} in HAVING"
                )
            if func is AggFunc.AVG:
                raise ResolutionError(
                    "AVG in HAVING is not supported; compute it with an "
                    "AS alias in the SELECT list"
                )
            arg = None if expr.arg is None else _lower_scalar(expr.arg, scope)
            for agg in aggregates:
                if agg.func is func and agg.arg == arg:
                    return ERef(agg.alias)
            alias = f"__having{len(aggregates)}"
            aggregates.append(Aggregate(func, arg, alias))
            return ERef(alias)
        if isinstance(expr, EBin):
            return EBin(
                expr.op,
                self._rewrite_having_aggregates(expr.left, scope, aggregates),
                self._rewrite_having_aggregates(expr.right, scope, aggregates),
            )
        if isinstance(expr, ENot):
            return ENot(
                self._rewrite_having_aggregates(expr.operand, scope,
                                                aggregates)
            )
        return expr

    def _compile_distinct_count(
        self, query: SelectQuery, plan: LogicalPlan, scope: _Scope
    ) -> LogicalPlan:
        """Rewrite ``COUNT(DISTINCT x)`` into dedup-then-count.

        ``SELECT K, Count(DISTINCT X) FROM R GROUP BY K`` becomes a
        duplicate-eliminating aggregation on ``(K, X)`` followed by a
        plain ``Count(X)`` on ``K`` — both stages are ordinary group-bys
        that split, share and enforce like any other.  To keep the
        rewrite simple the distinct count must be the only aggregate of
        its SELECT and its argument a plain column.
        """
        keys = tuple(scope.resolve(ref) for ref in query.group_by)
        calls = [
            item
            for item in query.items
            if isinstance(item.expr, ECall)
        ]
        distinct_calls = [c for c in calls if c.expr.distinct]
        if len(calls) != 1 or len(distinct_calls) != 1:
            raise ResolutionError(
                "COUNT(DISTINCT ...) must be the only aggregate in its "
                "SELECT (combine via separate statements and a join)"
            )
        call = distinct_calls[0].expr
        if call.func.upper() != "COUNT":
            raise ResolutionError(
                f"DISTINCT is only supported inside COUNT, not {call.func}"
            )
        if not isinstance(call.arg, ERef):
            raise ResolutionError(
                "COUNT(DISTINCT ...) takes a plain column reference"
            )
        arg_col = scope.resolve(call.arg)
        if arg_col in keys:
            raise ResolutionError(
                f"COUNT(DISTINCT {call.arg.name}) over a grouping key is "
                "always 1; drop the DISTINCT"
            )
        alias = distinct_calls[0].alias or f"CountD_{call.arg.name}"

        # Stage 1: eliminate duplicate (keys..., arg) combinations.
        dedup = LogicalGroupBy(keys + (arg_col,), ())
        plan = LogicalPlan(dedup, [plan])
        # Stage 2: count the surviving arg values per key.
        counting = LogicalGroupBy(
            keys,
            (Aggregate(AggFunc.COUNT, ColumnRef(arg_col), alias),),
        )
        plan = LogicalPlan(counting, [plan])

        if query.having is not None:
            having_scope = _Scope(
                [_Binding("", plan, {c: c for c in plan.schema.names})]
            )
            plan = LogicalPlan(
                LogicalFilter(_lower_scalar(query.having, having_scope)),
                [plan],
            )

        out_items: List[NamedExpr] = []
        for item in query.items:
            if isinstance(item.expr, ECall):
                out_items.append(NamedExpr(ColumnRef(alias), alias))
            else:
                lowered = _lower_scalar(item.expr, scope)
                out_items.append(
                    NamedExpr(lowered, item.alias or _default_alias(item.expr))
                )
        if _needs_projection(out_items, plan.schema):
            plan = LogicalPlan(LogicalProject(tuple(out_items)), [plan])
        return plan

    def _lower_aggregate(
        self,
        call: ECall,
        alias: Optional[str],
        scope: _Scope,
        aggregates: List[Aggregate],
    ) -> NamedExpr:
        """Lower one aggregate call, decomposing AVG into SUM/COUNT.

        Returns the post-aggregation output expression for this item and
        appends the underlying aggregate computations to ``aggregates``.
        """
        func = _AGG_FUNCS.get(call.func.upper())
        if func is None:
            raise ResolutionError(f"unknown aggregate function {call.func!r}")
        if call.distinct:
            raise ResolutionError(
                "COUNT(DISTINCT ...) must be the only aggregate in its "
                "SELECT (combine via separate statements and a join)"
            )
        if call.arg is None and func is not AggFunc.COUNT:
            raise ResolutionError(f"{call.func}(*) is only valid for COUNT")
        arg = None if call.arg is None else _lower_scalar(call.arg, scope)
        name = alias or _default_agg_alias(func, arg)
        if func is AggFunc.AVG:
            # Decompose so the split-GroupBy rule can always apply.
            sum_alias = f"__{name}_sum"
            cnt_alias = f"__{name}_cnt"
            aggregates.append(Aggregate(AggFunc.SUM, arg, sum_alias))
            aggregates.append(Aggregate(AggFunc.COUNT, arg, cnt_alias))
            ratio = BinaryExpr(
                BinaryOp.DIV, ColumnRef(sum_alias), ColumnRef(cnt_alias)
            )
            return NamedExpr(ratio, name)
        aggregates.append(Aggregate(func, arg, name))
        return NamedExpr(ColumnRef(name), name)

    # -- plain projection --------------------------------------------------

    def _projection(
        self, items: Tuple[SelectItem, ...], plan: LogicalPlan, scope: _Scope
    ) -> LogicalPlan:
        out_items = []
        for item in items:
            lowered = _lower_scalar(item.expr, scope)
            alias = item.alias or _default_alias(item.expr)
            out_items.append(NamedExpr(lowered, alias))
        if _needs_projection(out_items, plan.schema):
            return LogicalPlan(LogicalProject(tuple(out_items)), [plan])
        return plan


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _and_all(preds: List[Expr]) -> Expr:
    """Conjoin lowered predicates left-to-right."""
    result = preds[0]
    for pred in preds[1:]:
        result = BinaryExpr(BinaryOp.AND, result, pred)
    return result


def _split_conjuncts(expr: EExpr) -> List[EExpr]:
    if isinstance(expr, EBin) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _equi_pair(conj: EExpr) -> Optional[Tuple[ERef, ERef]]:
    if (
        isinstance(conj, EBin)
        and conj.op == "="
        and isinstance(conj.left, ERef)
        and isinstance(conj.right, ERef)
    ):
        return conj.left, conj.right
    return None


def _try_side(ref: ERef, left_scope: _Scope, right: _Binding) -> Optional[str]:
    """Classify a reference as belonging to the left side or the right."""
    if ref.qualifier is not None:
        if ref.qualifier == right.name:
            return "right" if ref.name in right.columns else None
        try:
            left_scope.resolve(ref)
            return "left"
        except ResolutionError:
            return None
    in_right = ref.name in right.columns
    try:
        left_scope.resolve(ref)
        in_left = True
    except ResolutionError:
        in_left = False
    if in_left and in_right:
        raise ResolutionError(
            f"ambiguous column {ref.name!r} in join predicate; qualify it"
        )
    if in_left:
        return "left"
    if in_right:
        return "right"
    return None


def _needs_projection(items: List[NamedExpr], schema: Schema) -> bool:
    """True unless ``items`` is exactly the identity over ``schema``."""
    if len(items) != len(schema):
        return True
    for item, col in zip(items, schema):
        if not isinstance(item.expr, ColumnRef):
            return True
        if item.expr.name != col.name or item.alias != col.name:
            return True
    return False


def _default_alias(expr: EExpr) -> str:
    if isinstance(expr, ERef):
        return expr.name
    raise ResolutionError(f"expression {expr!r} needs an AS alias")


def _default_agg_alias(func: AggFunc, arg) -> str:
    if arg is None:
        return f"{func.value}_all"
    cols = sorted(arg.referenced_columns())
    suffix = "_".join(cols) if cols else "expr"
    return f"{func.value}_{suffix}"


def compile_script(text: str, catalog: Catalog,
                   tracer=None) -> LogicalPlan:
    """Parse and compile ``text`` into a logical DAG in one call.

    ``tracer`` (a :class:`repro.obs.Tracer`) records ``parse`` and
    ``compile`` spans carrying statement and operator counts.
    """
    if tracer is None:
        from ..obs.tracer import NULL_TRACER

        tracer = NULL_TRACER
    with tracer.span("parse") as span:
        script = parse(text)
        span.set(statements=len(script.statements))
    with tracer.span("compile") as span:
        logical = Compiler(catalog).compile_script(script)
        span.set(operators=logical.count_operators())
    return logical
