"""Catalog of input files and their statistics.

The optimizer's cardinality estimation needs, per input file:

* the schema produced by the extractor,
* the row count,
* per-column number of distinct values (NDV).

SCOPE obtains these from Cosmos metadata; here users register them
explicitly (or let :meth:`Catalog.register_file` synthesize defaults).
``file_id`` is the unique identifier Definition 1 of the paper feeds into
expression fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..plan.columns import Column, ColumnType, Schema
from .errors import CatalogError
from .histogram import Histogram

DEFAULT_ROWS = 1_000_000
DEFAULT_NDV_FRACTION = 0.01


@dataclass
class FileStats:
    """Statistics of one registered input file."""

    file_id: int
    path: str
    schema: Schema
    rows: int
    ndv: Dict[str, int] = field(default_factory=dict)
    #: Optional per-column equi-depth histograms (numeric columns) used
    #: for range-predicate selectivity; see ``repro.scope.histogram``.
    histograms: Dict[str, "Histogram"] = field(default_factory=dict)

    def ndv_of(self, column: str) -> int:
        """NDV of ``column`` (defaulting to a fraction of the row count)."""
        known = self.ndv.get(column)
        if known is not None:
            return max(1, min(known, self.rows))
        return max(1, int(self.rows * DEFAULT_NDV_FRACTION))


class Catalog:
    """Registry of input files keyed by path."""

    def __init__(self):
        self._files: Dict[str, FileStats] = {}
        self._next_id = 1

    def register_file(
        self,
        path: str,
        columns: Iterable[Tuple[str, ColumnType]],
        rows: int = DEFAULT_ROWS,
        ndv: Optional[Dict[str, int]] = None,
        histograms: Optional[Dict[str, "Histogram"]] = None,
    ) -> FileStats:
        """Register an input file.

        Re-registering the same path replaces its statistics but keeps
        its ``file_id`` — the identity of the file (and hence expression
        fingerprints) must not change when stats are refreshed.
        """
        schema = Schema(Column(name, ctype) for name, ctype in columns)
        existing = self._files.get(path)
        file_id = existing.file_id if existing else self._next_id
        if not existing:
            self._next_id += 1
        stats = FileStats(
            file_id=file_id,
            path=path,
            schema=schema,
            rows=rows,
            ndv=dict(ndv or {}),
            histograms=dict(histograms or {}),
        )
        self._files[path] = stats
        return stats

    def lookup(self, path: str) -> FileStats:
        stats = self._files.get(path)
        if stats is None:
            raise CatalogError(
                f"input file {path!r} is not registered in the catalog"
            )
        return stats

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def files(self) -> Tuple[FileStats, ...]:
        return tuple(self._files.values())
