"""Statistics collection and catalog (de)serialization.

SCOPE gets table statistics from Cosmos metadata; here they can be

* declared explicitly (``Catalog.register_file``),
* **collected from data** (:func:`collect_statistics`,
  :meth:`register_data` below) — exact row counts and per-column
  distinct counts computed from in-memory rows, which closes the loop
  for experiments that both optimize and execute, or
* loaded from / saved to JSON (:func:`catalog_from_json`,
  :func:`catalog_to_json`) for use with the command-line interface.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..plan.columns import ColumnType
from ..plan.expressions import Row
from .catalog import Catalog, FileStats
from .errors import CatalogError
from .histogram import Histogram

_TYPE_NAMES = {t.value: t for t in ColumnType}


def infer_column_type(values: Iterable) -> ColumnType:
    """Best-effort column type from sample values."""
    seen_float = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return ColumnType.INT
        if isinstance(value, str):
            return ColumnType.STRING
        if isinstance(value, float):
            seen_float = True
        elif not isinstance(value, int):
            return ColumnType.STRING
    return ColumnType.FLOAT if seen_float else ColumnType.INT


def collect_statistics(
    rows: List[Row], columns: Optional[List[str]] = None
) -> Tuple[int, Dict[str, int], Dict[str, ColumnType]]:
    """Exact row count, per-column NDV and inferred types of ``rows``."""
    if not rows:
        raise CatalogError("cannot collect statistics from an empty rowset")
    names = columns or list(rows[0].keys())
    distinct: Dict[str, set] = {name: set() for name in names}
    for row in rows:
        for name in names:
            distinct[name].add(row.get(name))
    ndv = {name: len(values) for name, values in distinct.items()}
    types = {
        name: infer_column_type(v for v in distinct[name]) for name in names
    }
    return len(rows), ndv, types


def register_data(catalog: Catalog, path: str, rows: List[Row],
                  build_histograms: bool = True) -> FileStats:
    """Register a file in ``catalog`` with statistics computed from rows.

    The schema (column order) follows the first row's key order.  Numeric
    columns additionally get equi-depth histograms for range-predicate
    selectivity (disable with ``build_histograms=False``).
    """
    count, ndv, types = collect_statistics(rows)
    columns = [(name, types[name]) for name in rows[0].keys()]
    histograms = {}
    if build_histograms:
        for name, ctype in columns:
            if ctype is ColumnType.STRING:
                continue
            values = [row.get(name) for row in rows]
            if any(v is not None for v in values):
                histograms[name] = Histogram.from_values(
                    [v for v in values if v is not None]
                )
    return catalog.register_file(path, columns, rows=count, ndv=ndv,
                                 histograms=histograms)


# ---------------------------------------------------------------------------
# JSON (de)serialization
# ---------------------------------------------------------------------------


def catalog_to_json(catalog: Catalog) -> str:
    """Serialize a catalog to a JSON document."""
    files = []
    for stats in catalog.files():
        entry = {
            "path": stats.path,
            "rows": stats.rows,
            "columns": [
                {"name": col.name, "type": col.ctype.value}
                for col in stats.schema
            ],
            "ndv": dict(stats.ndv),
        }
        if stats.histograms:
            entry["histograms"] = {
                name: hist.to_list()
                for name, hist in stats.histograms.items()
            }
        files.append(entry)
    return json.dumps({"files": files}, indent=2)


def catalog_from_json(text: str) -> Catalog:
    """Load a catalog from the JSON format of :func:`catalog_to_json`.

    Schema example::

        {"files": [{"path": "test.log", "rows": 1000000,
                    "columns": [{"name": "A", "type": "int"}, ...],
                    "ndv": {"A": 250}}]}
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CatalogError(f"invalid catalog JSON: {exc}") from exc
    if not isinstance(document, dict) or "files" not in document:
        raise CatalogError('catalog JSON must be an object with a "files" list')
    catalog = Catalog()
    for entry in document["files"]:
        try:
            columns = []
            for col in entry["columns"]:
                ctype = _TYPE_NAMES.get(col.get("type", "int"))
                if ctype is None:
                    raise CatalogError(
                        f"unknown column type {col.get('type')!r} "
                        f"in {entry.get('path')!r}"
                    )
                columns.append((col["name"], ctype))
            histograms = {
                name: Histogram.from_list(items)
                for name, items in entry.get("histograms", {}).items()
            }
            catalog.register_file(
                entry["path"],
                columns,
                rows=int(entry.get("rows", 1_000_000)),
                ndv={k: int(v) for k, v in entry.get("ndv", {}).items()},
                histograms=histograms,
            )
        except KeyError as exc:
            raise CatalogError(f"catalog entry missing field {exc}") from exc
    return catalog
