"""Physical operators and physical plans.

Physical operators are the implementation algorithms the optimizer can
choose: parallel scans, exchange operators (hash repartitioning with or
without a merging sort, gather-merge), local sorts, stream/hash
aggregation at local/final/full scope, merge/hash/broadcast joins,
spools, and parallel outputs — the operator vocabulary of the plans in
Figure 8 of the paper.

Each operator knows how to *derive its delivered physical properties*
from its children's delivered properties
(:meth:`PhysicalOp.derive_props`).  What each operator *requires* of its
children is decided by the optimizer's implementation rules
(``repro.optimizer.rules``), because requirements depend on the search
context; the runtime (``repro.exec``) independently re-validates the
requirements at execution time so that optimizer bugs fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .columns import Schema
from .expressions import Aggregate, ColumnRef, Expr, NamedExpr
from .logical import GroupByMode, JoinKind
from .properties import (
    Partitioning,
    PartitionKind,
    PhysicalProps,
    ReqProps,
    SortOrder,
)


class PhysicalOp:
    """Base class of all physical operator payloads."""

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Phys", "")

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        """Delivered properties given the children's delivered properties."""
        raise NotImplementedError

    def detail(self) -> str:
        return ""


# ---------------------------------------------------------------------------
# Leaf / data access
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysExtract(PhysicalOp):
    """Parallel scan of a distributed input file.

    The file's blocks are spread over the cluster, so the scan delivers
    RANDOM partitioning and no sort order — matching step (1) of both
    plans in Figure 8 ("test.log is partitioned and distributed across
    all machines").
    """

    file_id: int
    path: str
    extractor: str
    schema: Schema

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(Partitioning.random(), SortOrder())

    def detail(self) -> str:
        return self.path


# ---------------------------------------------------------------------------
# Exchanges (the expensive operators in a cloud setting)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysRepartition(PhysicalOp):
    """Hash-repartition rows on ``columns`` across the cluster.

    If ``merge_sort`` is non-empty and every input stream is sorted on
    it, the receiving side merges the incoming streams, preserving the
    order — the paper's ``Repartition`` + ``SortMerge`` pair in Figure 8.
    """

    columns: Tuple[str, ...]
    merge_sort: SortOrder = field(default_factory=SortOrder)

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        if self.merge_sort.is_sorted and child.sort_order.satisfies(self.merge_sort):
            order = self.merge_sort
        else:
            order = SortOrder()
        return PhysicalProps(Partitioning.hashed(self.columns), order)

    def detail(self) -> str:
        cols = ",".join(self.columns)
        if self.merge_sort.is_sorted:
            return f"({cols}) merge-sort {self.merge_sort}"
        return f"({cols})"


@dataclass(frozen=True)
class PhysRangeRepartition(PhysicalOp):
    """Range-repartition rows on an ordered column list.

    The runtime computes boundaries from exact quantiles of the distinct
    key values (a production system samples), so equal keys are never
    split across partitions and partition *i* holds strictly smaller
    keys than partition *i+1*.  With ``merge_sort`` set (and sorted
    inputs) the receivers merge, preserving the order — which, combined
    with the range layout, makes the dataset globally sorted.
    """

    order: Tuple[str, ...]
    merge_sort: SortOrder = field(default_factory=SortOrder)

    def __post_init__(self):
        if not self.order:
            raise ValueError("range repartitioning needs a column order")

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        if self.merge_sort.is_sorted and child.sort_order.satisfies(self.merge_sort):
            order = self.merge_sort
        else:
            order = SortOrder()
        return PhysicalProps(Partitioning.ranged(self.order), order)

    def detail(self) -> str:
        cols = ",".join(self.order)
        if self.merge_sort.is_sorted:
            return f"({cols}) merge-sort {self.merge_sort}"
        return f"({cols})"


@dataclass(frozen=True)
class PhysMerge(PhysicalOp):
    """Gather every partition onto a single machine (SERIAL output).

    With a non-empty ``merge_sort`` (and sorted inputs) this is a
    sorted merge; otherwise a plain concatenation.
    """

    merge_sort: SortOrder = field(default_factory=SortOrder)

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        if self.merge_sort.is_sorted and child.sort_order.satisfies(self.merge_sort):
            order = self.merge_sort
        else:
            order = SortOrder()
        return PhysicalProps(Partitioning.serial(), order)

    def detail(self) -> str:
        return f"merge-sort {self.merge_sort}" if self.merge_sort.is_sorted else ""


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysFilter(PhysicalOp):
    """Apply a predicate; preserves all properties."""

    predicate: Expr

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return child_props[0]

    def detail(self) -> str:
        return str(self.predicate)


def _surviving_names(exprs: Tuple[NamedExpr, ...]) -> dict:
    """Map input column name -> output name for pass-through projections."""
    passthrough = {}
    for ne in exprs:
        if isinstance(ne.expr, ColumnRef) and ne.expr.name not in passthrough:
            passthrough[ne.expr.name] = ne.alias
    return passthrough


@dataclass(frozen=True)
class PhysProject(PhysicalOp):
    """Compute scalar expressions.

    Partitioning survives only if every partitioning column passes
    through unchanged (possibly renamed); the sort order survives up to
    the first non-surviving column.
    """

    exprs: Tuple[NamedExpr, ...]

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        survive = _surviving_names(self.exprs)
        part = child.partitioning
        if part.kind is PartitionKind.HASH:
            if all(c in survive for c in part.columns):
                part = Partitioning.hashed(survive[c] for c in part.columns)
            else:
                part = Partitioning.random()
        elif part.kind is PartitionKind.RANGE:
            if all(c in survive for c in part.order):
                part = Partitioning.ranged(survive[c] for c in part.order)
            else:
                part = Partitioning.random()
        order_cols = []
        for col in child.sort_order.columns:
            if col not in survive:
                break
            order_cols.append(survive[col])
        return PhysicalProps(part, SortOrder(tuple(order_cols)))

    def detail(self) -> str:
        return ", ".join(str(ne) for ne in self.exprs)


@dataclass(frozen=True)
class PhysSort(PhysicalOp):
    """Sort each partition locally on ``order``; partitioning preserved."""

    order: SortOrder

    def __post_init__(self):
        if not self.order.is_sorted:
            raise ValueError("sort requires a non-empty order")

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(child_props[0].partitioning, self.order)

    def detail(self) -> str:
        return str(self.order)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _surviving_partitioning(part: Partitioning, keys) -> Partitioning:
    """Partitioning after an aggregation that keeps only ``keys``.

    A hash partitioning on columns the aggregation drops is no longer
    expressible (and no longer useful) in the output schema.
    """
    if part.kind in (PartitionKind.HASH, PartitionKind.RANGE) and \
            not part.columns <= frozenset(keys):
        return Partitioning.random()
    return part


@dataclass(frozen=True)
class PhysStreamAgg(PhysicalOp):
    """Sort-based aggregation over a specific key *order*.

    Requires the input sorted on ``key_order`` (some permutation of the
    grouping keys, chosen by the implementation rule to match the
    surrounding plan — this is why Figure 8 sorts on ``(B,A,C)`` on one
    side and ``(C,B,A)`` on the other).  For FULL/FINAL scope the input
    must additionally be partitioned on a subset of the keys.
    """

    key_order: Tuple[str, ...]
    aggregates: Tuple[Aggregate, ...]
    mode: GroupByMode = GroupByMode.FULL

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        part = _surviving_partitioning(child.partitioning, self.key_order)
        return PhysicalProps(part, SortOrder(self.key_order))

    def detail(self) -> str:
        keys = ",".join(self.key_order)
        return f"({keys}) [{self.mode.value}]"


@dataclass(frozen=True)
class PhysHashAgg(PhysicalOp):
    """Hash-based aggregation; no sort requirement, destroys order."""

    keys: Tuple[str, ...]
    aggregates: Tuple[Aggregate, ...]
    mode: GroupByMode = GroupByMode.FULL

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        part = _surviving_partitioning(child_props[0].partitioning, self.keys)
        return PhysicalProps(part, SortOrder())

    def detail(self) -> str:
        keys = ",".join(self.keys)
        return f"({keys}) [{self.mode.value}]"


@dataclass(frozen=True)
class PhysTopN(PhysicalOp):
    """Sort-select the first ``n`` rows of the deterministic order.

    LOCAL keeps a per-partition top-n; FULL computes the final answer
    over a single partition.  Both sort internally, so no input sort is
    required, and the output is sorted on ``order_columns``.
    """

    n: int
    order_columns: Tuple[str, ...]
    mode: GroupByMode = GroupByMode.FULL

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        child = child_props[0]
        if self.mode is GroupByMode.LOCAL:
            part = child.partitioning
        else:
            part = Partitioning.serial()
        return PhysicalProps(part, SortOrder(self.order_columns))

    def detail(self) -> str:
        mode = "" if self.mode is not GroupByMode.LOCAL else " [local]"
        return f"{self.n} ORDER BY {','.join(self.order_columns)}{mode}"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysMergeJoin(PhysicalOp):
    """Sorted merge join.

    Requires both inputs sorted on the chosen key order and
    co-partitioned on matching key subsets (enforced by the
    implementation rule); delivers the left sort order and the left
    partitioning.
    """

    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    kind: JoinKind = JoinKind.INNER

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        left = child_props[0]
        return PhysicalProps(left.partitioning, SortOrder(self.left_keys))

    def detail(self) -> str:
        return ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))


@dataclass(frozen=True)
class PhysHashJoin(PhysicalOp):
    """Partitioned hash join; destroys order, keeps left partitioning."""

    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    kind: JoinKind = JoinKind.INNER

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(child_props[0].partitioning, SortOrder())

    def detail(self) -> str:
        return ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))


@dataclass(frozen=True)
class PhysBroadcastJoin(PhysicalOp):
    """Hash join with the (small) right side broadcast to every partition.

    Places no partitioning requirement on either side; pays network cost
    proportional to right size × degree of parallelism.
    """

    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    kind: JoinKind = JoinKind.INNER

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(child_props[0].partitioning, SortOrder())

    def detail(self) -> str:
        return ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))


# ---------------------------------------------------------------------------
# Sharing, outputs, glue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhysSpool(PhysicalOp):
    """Materialize the input once; each consumer re-reads it.

    The cost model charges the build side once per distinct (group,
    required properties) pair and a read per consumer — the DAG-aware
    accounting that makes sharing pay off (DESIGN.md, decision 4).
    Properties pass through: the materialized result keeps the layout it
    was built with.
    """

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return child_props[0]


@dataclass(frozen=True)
class PhysPassThrough(PhysicalOp):
    """Non-materializing implementation of a SPOOL group.

    Keeps the decision to share *cost-based*: when the shared
    subexpression is cheaper to recompute per consumer than to
    materialize and re-read (tiny intermediate results), the optimizer
    can pick this no-op and fall back to duplicated execution.  The
    runtime re-executes its input once per consumer, and the DAG-aware
    coster charges it accordingly.
    """

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return child_props[0]


@dataclass(frozen=True)
class PhysOutput(PhysicalOp):
    """Write the input to a distributed file, one stream per partition.

    With non-empty ``sort_columns`` the writer requires a single,
    globally sorted input stream (gather-merge enforced below it).
    """

    path: str
    sort_columns: Tuple[str, ...] = ()

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(Partitioning.random(), SortOrder())

    def detail(self) -> str:
        if self.sort_columns:
            return f"{self.path} ORDER BY {','.join(self.sort_columns)}"
        return self.path


@dataclass(frozen=True)
class PhysSequence(PhysicalOp):
    """Root combinator over the script's terminal sub-plans."""

    n_inputs: int = 2

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(Partitioning.random(), SortOrder())


@dataclass(frozen=True)
class PhysUnionAll(PhysicalOp):
    """Bag union; no guarantees about layout of the result."""

    n_inputs: int = 2

    def derive_props(self, child_props: Sequence[PhysicalProps]) -> PhysicalProps:
        return PhysicalProps(Partitioning.random(), SortOrder())


# ---------------------------------------------------------------------------
# Physical plan nodes
# ---------------------------------------------------------------------------


@dataclass
class PhysicalPlan:
    """A node of a physical plan.

    Plans are DAGs: the memo's winner cache returns the *same*
    ``PhysicalPlan`` object whenever a (group, required properties,
    enforcement context) triple repeats, so shared spools appear once by
    object identity and the DAG-aware coster can deduplicate them.

    Attributes
    ----------
    op:
        The physical operator payload.
    children:
        Child plans.
    schema:
        Output schema.
    props:
        Delivered physical properties.
    group_id:
        The memo group this plan implements (``None`` for plans built
        outside the optimizer, e.g. in tests).
    required:
        The required properties this plan was optimized for.
    cost:
        Estimated cost of the *tree* rooted here (set by the optimizer).
    self_cost:
        This node's own cost contribution (``cost`` minus children).
    rows:
        Estimated output row count (set by the optimizer).
    """

    op: PhysicalOp
    children: Tuple["PhysicalPlan", ...]
    schema: Schema
    props: PhysicalProps
    group_id: Optional[int] = None
    required: Optional[ReqProps] = None
    cost: float = 0.0
    self_cost: float = 0.0
    rows: float = 0.0

    def iter_nodes(self):
        """Yield each distinct node once (by object identity)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.children))

    def count_operator(self, op_type) -> int:
        """Count distinct nodes whose operator is an ``op_type``."""
        return sum(1 for n in self.iter_nodes() if isinstance(n.op, op_type))

    def find_all(self, op_type):
        return [n for n in self.iter_nodes() if isinstance(n.op, op_type)]

    def pretty(self, indent: int = 0, _seen=None) -> str:
        """Indented rendering; shared sub-plans are printed once."""
        if _seen is None:
            _seen = {}
        pad = "  " * indent
        if id(self) in _seen:
            return f"{pad}^ shared {self.op.name} (see *{_seen[id(self)]})\n"
        mark = ""
        if isinstance(self.op, PhysSpool):
            _seen[id(self)] = len(_seen) + 1
            mark = f" *{_seen[id(self)]}"
        detail = self.op.detail()
        extras = f" [{detail}]" if detail else ""
        stats = f"  {{rows={self.rows:.0f} cost={self.cost:.1f} {self.props}}}"
        line = f"{pad}{self.op.name}{extras}{mark}{stats}\n"
        return line + "".join(c.pretty(indent + 1, _seen) for c in self.children)
