"""Logical operators.

Logical operators are immutable *payload* objects: they describe what an
operation computes but do not hold their children.  Children live either
in a :class:`LogicalPlan` DAG node (the compiler's output) or as memo
group references inside a group expression (the optimizer's
representation).  Keeping payloads free of child pointers lets the memo
deduplicate expressions by value, which is what Cascades requires.

Operator set (the paper's scripts plus enough for realistic examples):

========================  =====================================================
:class:`LogicalExtract`   read a distributed file with a user extractor
:class:`LogicalFilter`    row predicate
:class:`LogicalProject`   compute/rename/drop columns
:class:`LogicalGroupBy`   grouping aggregation (FULL / LOCAL / FINAL modes)
:class:`LogicalJoin`      inner equi-join
:class:`LogicalUnionAll`  bag union of union-compatible inputs
:class:`LogicalSpool`     materialization point for a shared subexpression
:class:`LogicalOutput`    write a result to a distributed file (terminal)
:class:`LogicalSequence`  ties several terminals into one script (the paper's
                          Sequence operator)
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .columns import Column, ColumnType, Schema
from .expressions import AggFunc, Aggregate, ColumnRef, Expr, NamedExpr


class LogicalOp:
    """Base class of all logical operator payloads."""

    #: Stable per-class identifier used by expression fingerprints
    #: (Definition 1: "all group-by operations have the same OpID").
    OP_TYPE_ID: int = 0
    #: Number of children; ``None`` means variadic (Sequence, UnionAll).
    ARITY = 1

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Logical", "")

    @property
    def is_leaf(self) -> bool:
        return self.ARITY == 0

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        """Output schema given the children's schemas."""
        raise NotImplementedError

    def detail(self) -> str:
        """Short human-readable payload description for plan printing."""
        return ""


@dataclass(frozen=True)
class LogicalExtract(LogicalOp):
    """Read a distributed input file using a named extractor.

    ``file_id`` is the catalog's unique identifier for the file — the
    quantity Definition 1 calls ``FileID``.
    """

    file_id: int
    path: str
    extractor: str
    schema: Schema

    OP_TYPE_ID = 1
    ARITY = 0

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return self.schema

    def detail(self) -> str:
        return f"{self.path}"


@dataclass(frozen=True)
class LogicalFilter(LogicalOp):
    """Keep rows satisfying ``predicate``."""

    predicate: Expr

    OP_TYPE_ID = 2
    ARITY = 1

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return child_schemas[0]

    def detail(self) -> str:
        return str(self.predicate)


def _infer_type(expr: Expr, child: Schema) -> ColumnType:
    """Best-effort output type of a scalar expression."""
    if isinstance(expr, ColumnRef):
        col = child.get(expr.name)
        return col.ctype if col is not None else ColumnType.INT
    from .expressions import BinaryExpr, Literal, NotExpr

    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return ColumnType.STRING
        if isinstance(expr.value, float):
            return ColumnType.FLOAT
        return ColumnType.INT
    if isinstance(expr, NotExpr):
        return ColumnType.INT
    if isinstance(expr, BinaryExpr):
        if expr.op.is_comparison or expr.op.is_boolean:
            return ColumnType.INT
        left = _infer_type(expr.left, child)
        right = _infer_type(expr.right, child)
        if ColumnType.FLOAT in (left, right):
            return ColumnType.FLOAT
        return left
    return ColumnType.INT


@dataclass(frozen=True)
class LogicalProject(LogicalOp):
    """Compute ``exprs`` and emit them under their aliases."""

    exprs: Tuple[NamedExpr, ...]

    OP_TYPE_ID = 3
    ARITY = 1

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        child = child_schemas[0]
        return Schema(
            Column(ne.alias, _infer_type(ne.expr, child)) for ne in self.exprs
        )

    def detail(self) -> str:
        return ", ".join(str(ne) for ne in self.exprs)


class GroupByMode(enum.Enum):
    """How a grouping aggregation participates in a two-level split.

    ``FULL`` is the user-visible aggregation.  The split transformation
    rewrites ``FULL`` into ``FINAL`` over ``LOCAL``: the local stage
    pre-aggregates within each partition (no partitioning requirement),
    the final stage merges partial states and *does* require the input to
    be partitioned on a subset of the keys.
    """

    FULL = "full"
    LOCAL = "local"
    FINAL = "final"


@dataclass(frozen=True)
class LogicalGroupBy(LogicalOp):
    """Grouping aggregation on ``keys`` computing ``aggregates``."""

    keys: Tuple[str, ...]
    aggregates: Tuple[Aggregate, ...]
    mode: GroupByMode = GroupByMode.FULL

    OP_TYPE_ID = 4
    ARITY = 1

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        child = child_schemas[0]
        cols: List[Column] = [child[k] for k in self.keys]
        for agg in self.aggregates:
            if agg.func is AggFunc.COUNT:
                ctype = ColumnType.INT
            elif agg.func is AggFunc.AVG:
                ctype = ColumnType.FLOAT
            else:
                ctype = _infer_type(agg.arg, child)
            cols.append(Column(agg.alias, ctype))
        return Schema(cols)

    @property
    def key_set(self):
        return frozenset(self.keys)

    def detail(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        mode = "" if self.mode is GroupByMode.FULL else f" [{self.mode.value}]"
        return f"keys=({','.join(self.keys)}) {aggs}{mode}"


class JoinKind(enum.Enum):
    """Join semantics.

    INNER emits matching pairs; LEFT additionally emits every unmatched
    left row padded with NULLs for the right side's columns.
    """

    INNER = "inner"
    LEFT = "left"


@dataclass(frozen=True)
class LogicalJoin(LogicalOp):
    """Equi-join on ``left_keys[i] = right_keys[i]``.

    Key names refer to the left/right child schemas respectively.  The
    compiler renames clashing right-side columns before building the
    join, so the concatenated output schema is clash-free.
    """

    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    kind: "JoinKind" = None  # type: ignore[assignment]

    OP_TYPE_ID = 5
    ARITY = 2

    def __post_init__(self):
        if self.kind is None:
            object.__setattr__(self, "kind", JoinKind.INNER)
        if len(self.left_keys) != len(self.right_keys):
            raise ValueError("join key lists must have equal length")
        if not self.left_keys:
            raise ValueError("equi-join requires at least one key pair")

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return child_schemas[0].concat(child_schemas[1])

    def detail(self) -> str:
        pairs = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.kind is JoinKind.LEFT:
            return f"LEFT {pairs}"
        return pairs


@dataclass(frozen=True)
class LogicalUnionAll(LogicalOp):
    """Bag union of union-compatible inputs (schema of the first child)."""

    n_inputs: int = 2

    OP_TYPE_ID = 6
    ARITY = None

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        first = child_schemas[0]
        for other in child_schemas[1:]:
            if len(other) != len(first):
                raise ValueError("UNION ALL inputs must have equal arity")
        return first


@dataclass(frozen=True)
class LogicalTopN(LogicalOp):
    """Keep the first ``n`` rows of a deterministic total order.

    The order is ``order_columns`` followed by every remaining schema
    column (ties broken by the full row), which makes TOP results
    deterministic and therefore oracle-comparable.  ``mode`` mirrors the
    aggregation split: LOCAL keeps a per-partition top-n (a superset of
    the global answer), FULL computes the final answer and requires a
    single partition.
    """

    n: int
    order_columns: Tuple[str, ...]
    mode: GroupByMode = GroupByMode.FULL

    OP_TYPE_ID = 10
    ARITY = 1

    def __post_init__(self):
        if self.n < 1:
            raise ValueError("TOP requires a positive row count")
        if not self.order_columns:
            raise ValueError("TOP requires an ORDER BY")

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return child_schemas[0]

    def detail(self) -> str:
        mode = "" if self.mode is GroupByMode.FULL else f" [{self.mode.value}]"
        return f"{self.n} ORDER BY {','.join(self.order_columns)}{mode}"


@dataclass(frozen=True)
class LogicalSpool(LogicalOp):
    """Materialization point inserted on top of a shared subexpression.

    This is the paper's SPOOL operator (Algorithm 1): the single node all
    consumers of a common subexpression point to.  It is a logical no-op
    (output = input); its physical implementations decide whether to
    actually materialize or to recompute per consumer.
    """

    OP_TYPE_ID = 7
    ARITY = 1

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return child_schemas[0]


@dataclass(frozen=True)
class LogicalOutput(LogicalOp):
    """Write the input relation to a distributed output file.

    A non-empty ``sort_columns`` requests a globally sorted output: the
    implementation gathers the rows onto one writer in that order (the
    only globally-ordered layout the simulator models).
    """

    path: str
    sort_columns: Tuple[str, ...] = ()

    OP_TYPE_ID = 8
    ARITY = 1

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return child_schemas[0]

    def detail(self) -> str:
        if self.sort_columns:
            return f"{self.path} ORDER BY {','.join(self.sort_columns)}"
        return self.path


@dataclass(frozen=True)
class LogicalSequence(LogicalOp):
    """Combine all terminal operators of a script into a single root.

    The Sequence operator does not process data; it only states that the
    overall plan is composed of several sub-plans (paper, Section IX).
    """

    n_inputs: int = 2

    OP_TYPE_ID = 9
    ARITY = None

    def derive_schema(self, child_schemas: Sequence[Schema]) -> Schema:
        return Schema(())


@dataclass
class LogicalPlan:
    """A node of the compiler's logical operator DAG.

    Children are direct references, so a relation consumed twice appears
    as one node with two parents — the *explicitly given* common
    subexpressions of Algorithm 1.
    """

    op: LogicalOp
    children: List["LogicalPlan"] = field(default_factory=list)

    def __post_init__(self):
        arity = self.op.ARITY
        if arity is not None and len(self.children) != arity:
            raise ValueError(
                f"{self.op.name} expects {arity} children, got {len(self.children)}"
            )
        self._schema = self.op.derive_schema([c.schema for c in self.children])

    @property
    def schema(self) -> Schema:
        return self._schema

    def iter_nodes(self):
        """Yield each distinct node once (pre-order over the DAG)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.children))

    def count_operators(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def pretty(self, indent: int = 0, _seen=None) -> str:
        """Indented text rendering of the DAG (shared nodes marked)."""
        if _seen is None:
            _seen = {}
        pad = "  " * indent
        if id(self) in _seen:
            return f"{pad}{self.op.name} <shared #{_seen[id(self)]}>\n"
        _seen[id(self)] = len(_seen) + 1
        detail = self.op.detail()
        line = f"{pad}{self.op.name}" + (f" [{detail}]" if detail else "") + "\n"
        return line + "".join(c.pretty(indent + 1, _seen) for c in self.children)
