"""Scalar and aggregate expressions.

The expression language is deliberately the subset the paper's scripts
need, plus enough arithmetic/comparison to write realistic examples:

* column references,
* literals,
* binary arithmetic (``+ - * /``) and comparisons (``= <> < <= > >=``),
* boolean ``AND`` / ``OR`` / ``NOT``,
* aggregate calls ``SUM``, ``COUNT``, ``MIN``, ``MAX``, ``AVG``.

All nodes are immutable and hashable: the memo deduplicates operators by
value, and expression fingerprinting (``repro.cse.fingerprint``) hashes
them.  Evaluation (`Expr.evaluate`) operates on a row dict and is shared
by the naive reference evaluator and the cluster simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

Value = Union[int, float, str, None]
Row = Dict[str, Value]


class Expr:
    """Base class for scalar expressions."""

    def referenced_columns(self) -> FrozenSet[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    def evaluate(self, row: Row) -> Value:
        """Evaluate against a row (mapping column name -> value)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column by (resolved) name."""

    name: str

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, row: Row) -> Value:
        return row[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: Value

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, row: Row) -> Value:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in (
            BinaryOp.EQ,
            BinaryOp.NE,
            BinaryOp.LT,
            BinaryOp.LE,
            BinaryOp.GT,
            BinaryOp.GE,
        )

    @property
    def is_boolean(self) -> bool:
        return self in (BinaryOp.AND, BinaryOp.OR)


@dataclass(frozen=True)
class BinaryExpr(Expr):
    """A binary arithmetic, comparison or boolean expression."""

    op: BinaryOp
    left: Expr
    right: Expr

    def referenced_columns(self) -> FrozenSet[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def evaluate(self, row: Row) -> Value:
        op = self.op
        if op is BinaryOp.AND:
            return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))
        if op is BinaryOp.OR:
            return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            # Simplified SQL null semantics: arithmetic over NULL is
            # NULL; comparisons with NULL are not satisfied (two-valued:
            # the UNKNOWN of three-valued logic collapses to False).
            if op.is_comparison:
                return False
            return None
        if op is BinaryOp.ADD:
            return lhs + rhs
        if op is BinaryOp.SUB:
            return lhs - rhs
        if op is BinaryOp.MUL:
            return lhs * rhs
        if op is BinaryOp.DIV:
            return lhs / rhs
        if op is BinaryOp.EQ:
            return lhs == rhs
        if op is BinaryOp.NE:
            return lhs != rhs
        if op is BinaryOp.LT:
            return lhs < rhs
        if op is BinaryOp.LE:
            return lhs <= rhs
        if op is BinaryOp.GT:
            return lhs > rhs
        if op is BinaryOp.GE:
            return lhs >= rhs
        raise AssertionError(f"unhandled operator {op}")  # pragma: no cover

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class NotExpr(Expr):
    """Boolean negation."""

    operand: Expr

    def referenced_columns(self) -> FrozenSet[str]:
        return self.operand.referenced_columns()

    def evaluate(self, row: Row) -> Value:
        return not bool(self.operand.evaluate(row))

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


class AggFunc(enum.Enum):
    """Supported aggregate functions.

    Every function is *decomposable* into a local (partial) aggregation
    and a global (final) aggregation, which is what allows the optimizer
    to split a GroupBy into a local pre-aggregation below the exchange
    and a final aggregation above it (the (3)/(5) steps of Figure 8).
    """

    SUM = "Sum"
    COUNT = "Count"
    MIN = "Min"
    MAX = "Max"
    AVG = "Avg"

    @property
    def partial_func(self) -> "AggFunc":
        """Aggregate applied at the local (pre-aggregation) stage."""
        # AVG is decomposed into SUM + COUNT by the split rule, never
        # applied partially as-is.
        if self is AggFunc.AVG:
            raise ValueError("AVG must be decomposed before splitting")
        return self

    @property
    def merge_func(self) -> "AggFunc":
        """Aggregate that merges partial results at the final stage."""
        if self is AggFunc.COUNT:
            return AggFunc.SUM
        if self is AggFunc.AVG:
            raise ValueError("AVG must be decomposed before splitting")
        return self


@dataclass(frozen=True)
class Aggregate:
    """A single aggregate computation ``func(arg) AS alias``.

    ``arg`` is ``None`` only for ``COUNT(*)``.
    """

    func: AggFunc
    arg: Union[Expr, None]
    alias: str

    def referenced_columns(self) -> FrozenSet[str]:
        if self.arg is None:
            return frozenset()
        return self.arg.referenced_columns()

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func.value}({inner}) AS {self.alias}"

    def init_state(self) -> Value:
        if self.func is AggFunc.COUNT:
            return 0
        return None

    def accumulate(self, state: Value, row: Row) -> Value:
        """Fold one input row into the running state."""
        func = self.func
        if func is AggFunc.COUNT:
            if self.arg is None:
                return state + 1
            return state + (0 if self.arg.evaluate(row) is None else 1)
        value = self.arg.evaluate(row)
        if value is None:
            return state
        if state is None:
            if func is AggFunc.AVG:
                return (value, 1)
            return value
        if func is AggFunc.SUM:
            return state + value
        if func is AggFunc.MIN:
            return min(state, value)
        if func is AggFunc.MAX:
            return max(state, value)
        if func is AggFunc.AVG:
            total, count = state
            return (total + value, count + 1)
        raise AssertionError(f"unhandled aggregate {func}")  # pragma: no cover

    def finalize(self, state: Value) -> Value:
        if self.func is AggFunc.AVG:
            if state is None:
                return None
            total, count = state
            return total / count
        return state


@dataclass(frozen=True)
class NamedExpr:
    """A projected expression with an output name (``expr AS alias``)."""

    expr: Expr
    alias: str

    def referenced_columns(self) -> FrozenSet[str]:
        return self.expr.referenced_columns()

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}"


def conjuncts(pred: Expr) -> Tuple[Expr, ...]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(pred, BinaryExpr) and pred.op is BinaryOp.AND:
        return conjuncts(pred.left) + conjuncts(pred.right)
    return (pred,)


def equi_join_keys(pred: Expr) -> Union[Tuple[Tuple[str, ...], Tuple[str, ...]], None]:
    """Extract equi-join keys from a conjunction of column equalities.

    Returns ``(left_names, right_names)`` if every conjunct is a
    ``ColumnRef = ColumnRef`` comparison, else ``None``.  The caller
    decides which side each column belongs to.
    """
    left_names = []
    right_names = []
    for conj in conjuncts(pred):
        if not (
            isinstance(conj, BinaryExpr)
            and conj.op is BinaryOp.EQ
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
        ):
            return None
        left_names.append(conj.left.name)
        right_names.append(conj.right.name)
    return tuple(left_names), tuple(right_names)
