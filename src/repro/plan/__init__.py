"""Relational algebra: columns, expressions, logical/physical operators,
and the physical-property framework."""

from .columns import Column, ColumnType, Schema
from .expressions import (
    AggFunc,
    Aggregate,
    BinaryExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    NamedExpr,
    NotExpr,
)
from .logical import (
    GroupByMode,
    JoinKind,
    LogicalExtract,
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalOutput,
    LogicalPlan,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalTopN,
    LogicalUnionAll,
)
from .physical import (
    PhysBroadcastJoin,
    PhysExtract,
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysicalOp,
    PhysicalPlan,
    PhysMerge,
    PhysMergeJoin,
    PhysOutput,
    PhysPassThrough,
    PhysProject,
    PhysRangeRepartition,
    PhysRepartition,
    PhysSequence,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
    PhysTopN,
    PhysUnionAll,
)
from .properties import (
    Partitioning,
    PartitioningReq,
    PartitionKind,
    PartReqKind,
    PhysicalProps,
    ReqProps,
    SortOrder,
    enforced_props_for,
    subsets_nonempty,
)

__all__ = [name for name in dir() if not name.startswith("_")]
