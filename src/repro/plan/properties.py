"""Physical properties and property requirements.

This module implements the property framework of the SCOPE optimizer as
described in the paper (Sections I and V) and in Zhou et al., "Incorporating
Partitioning and Parallel Plans into the SCOPE Optimizer" (ICDE 2010):

* **Delivered properties** (:class:`Partitioning`, :class:`PhysicalProps`)
  describe how the rows produced by a physical plan are laid out: how they
  are partitioned across machines and how each partition is sorted.

* **Required properties** (:class:`PartitioningReq`, :class:`ReqProps`)
  describe what a consumer needs.  Partitioning requirements are expressed
  as a *range* ``[lo, hi]`` of column sets — the paper's ``[∅, {A,B,C}]``
  notation — with the key satisfaction rule:

      data hash-partitioned on a non-empty ``X`` is also partitioned on any
      superset of ``X``; hence ``X`` satisfies ``[lo, hi]`` iff
      ``lo ⊆ X ⊆ hi``.

  ``SERIAL`` (all rows in a single partition) trivially satisfies every
  partitioning requirement.

This subset rule is exactly what lets the extended optimizer pick the
locally sub-optimal "repartition on ``{B}``" at the shared node of script
S1: partitioning on ``{B}`` satisfies both the ``{A,B}`` and the ``{B,C}``
grouping consumers (Figure 1(b)).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple


class PartitionKind(enum.Enum):
    """How a dataset is distributed across the machines of the cluster."""

    #: No guarantee: rows are spread arbitrarily (e.g. round-robin scan).
    RANDOM = "random"
    #: All rows live in one partition on one machine.
    SERIAL = "serial"
    #: Rows are hash-partitioned on a non-empty set of columns.
    HASH = "hash"
    #: Rows are range-partitioned on an ordered column list: partition
    #: boundaries follow the columns' sort order, so partition *i* holds
    #: strictly smaller keys than partition *i+1*.  Combined with a
    #: per-partition sort this yields a globally sorted dataset — the
    #: layout behind parallel sorted outputs.
    RANGE = "range"


@dataclass(frozen=True)
class Partitioning:
    """A delivered partitioning.

    ``columns`` is meaningful for :attr:`PartitionKind.HASH` and
    :attr:`PartitionKind.RANGE`; for RANGE the additional ``order``
    records the boundary column order (``columns`` is its set).
    """

    kind: PartitionKind
    columns: FrozenSet[str] = frozenset()
    order: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind is PartitionKind.HASH:
            if not self.columns:
                raise ValueError(
                    "hash partitioning requires a non-empty column set"
                )
            if self.order:
                raise ValueError("hash partitioning carries no column order")
        elif self.kind is PartitionKind.RANGE:
            if not self.order:
                raise ValueError(
                    "range partitioning requires a non-empty column order"
                )
            if self.columns != frozenset(self.order):
                raise ValueError("range partitioning columns must match order")
        elif self.columns or self.order:
            raise ValueError(f"{self.kind} partitioning carries no columns")

    @staticmethod
    def random() -> "Partitioning":
        return Partitioning(PartitionKind.RANDOM)

    @staticmethod
    def serial() -> "Partitioning":
        return Partitioning(PartitionKind.SERIAL)

    @staticmethod
    def hashed(columns: Iterable[str]) -> "Partitioning":
        return Partitioning(PartitionKind.HASH, frozenset(columns))

    @staticmethod
    def ranged(order: Iterable[str]) -> "Partitioning":
        order = tuple(order)
        return Partitioning(PartitionKind.RANGE, frozenset(order), order)

    @property
    def is_parallel(self) -> bool:
        return self.kind is not PartitionKind.SERIAL

    def partitioned_on(self, columns: Iterable[str]) -> bool:
        """True if rows agreeing on ``columns`` share a partition.

        A SERIAL layout is partitioned on everything; HASH and RANGE
        layouts on ``X`` are partitioned on every superset of ``X`` (the
        paper's subset rule — range boundaries never split equal keys);
        a RANDOM layout guarantees nothing.
        """
        if self.kind is PartitionKind.SERIAL:
            return True
        if self.kind in (PartitionKind.HASH, PartitionKind.RANGE):
            return self.columns <= frozenset(columns)
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is PartitionKind.HASH:
            return "hash(" + ",".join(sorted(self.columns)) + ")"
        if self.kind is PartitionKind.RANGE:
            return "range(" + ",".join(self.order) + ")"
        return self.kind.value


class PartReqKind(enum.Enum):
    """Kinds of partitioning requirements."""

    #: No requirement: any layout is acceptable.
    NONE = "none"
    #: All rows must be in one partition.
    SERIAL = "serial"
    #: Hash or range partitioning on an ``X`` with ``lo ⊆ X ⊆ hi``
    #: (or serial) — the paper's ``[lo, hi]`` ranges of column sets.
    RANGE = "range"
    #: Range partitioning whose boundary order is a non-empty prefix of
    #: the given column order (or serial).  This is what a parallel
    #: globally sorted output needs from its input.
    RANGE_SORTED = "range-sorted"


@dataclass(frozen=True)
class PartitioningReq:
    """A partitioning requirement.

    For :attr:`PartReqKind.RANGE`, ``lo`` and ``hi`` bound the admissible
    hash-partitioning column sets.  ``lo == hi`` expresses the *exact*
    requirements produced when the CSE machinery expands a range into its
    concrete subsets (Section V of the paper).
    """

    kind: PartReqKind
    lo: FrozenSet[str] = frozenset()
    hi: FrozenSet[str] = frozenset()
    #: Only for RANGE_SORTED: the required boundary column order.
    sorted_order: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind is PartReqKind.RANGE:
            if not self.hi:
                raise ValueError("range requirement needs a non-empty upper bound")
            if not self.lo <= self.hi:
                raise ValueError(f"invalid range: {set(self.lo)} ⊄ {set(self.hi)}")
        elif self.kind is PartReqKind.RANGE_SORTED:
            if not self.sorted_order:
                raise ValueError(
                    "range-sorted requirement needs a non-empty column order"
                )
            if self.lo or self.hi:
                raise ValueError(
                    "range-sorted requirement carries only an order"
                )
        elif self.lo or self.hi or self.sorted_order:
            raise ValueError(f"{self.kind} requirement carries no columns")

    @staticmethod
    def none() -> "PartitioningReq":
        return PartitioningReq(PartReqKind.NONE)

    @staticmethod
    def serial() -> "PartitioningReq":
        return PartitioningReq(PartReqKind.SERIAL)

    @staticmethod
    def range(lo: Iterable[str], hi: Iterable[str]) -> "PartitioningReq":
        return PartitioningReq(PartReqKind.RANGE, frozenset(lo), frozenset(hi))

    @staticmethod
    def exact(columns: Iterable[str]) -> "PartitioningReq":
        """The requirement ``[X, X]``: hash-partitioned on exactly ``X``."""
        cols = frozenset(columns)
        return PartitioningReq(PartReqKind.RANGE, cols, cols)

    @staticmethod
    def grouping(columns: Iterable[str]) -> "PartitioningReq":
        """Requirement of a grouping consumer on keys ``columns``.

        The paper writes this as the range ``[∅, keys]``: any non-empty
        subset of the keys works (or serial).
        """
        return PartitioningReq(PartReqKind.RANGE, frozenset(), frozenset(columns))

    @staticmethod
    def range_sorted(order: Iterable[str]) -> "PartitioningReq":
        """Range partitioning by a non-empty prefix of ``order``."""
        return PartitioningReq(
            PartReqKind.RANGE_SORTED, sorted_order=tuple(order)
        )

    def is_satisfied_by(self, delivered: Partitioning) -> bool:
        """Does ``delivered`` satisfy this requirement?"""
        if self.kind is PartReqKind.NONE:
            return True
        if delivered.kind is PartitionKind.SERIAL:
            # A single partition satisfies both SERIAL and any RANGE (the
            # empty set is always in the range per the paper's [∅, hi]),
            # and it is trivially range-ordered.
            return True
        if self.kind is PartReqKind.SERIAL:
            return False
        if self.kind is PartReqKind.RANGE_SORTED:
            if delivered.kind is not PartitionKind.RANGE:
                return False
            prefix = self.sorted_order[: len(delivered.order)]
            return bool(delivered.order) and delivered.order == prefix
        if delivered.kind in (PartitionKind.HASH, PartitionKind.RANGE):
            return self.lo <= delivered.columns <= self.hi
        return False

    def concrete_partitionings(
        self, max_subset_size: Optional[int] = None
    ) -> Tuple[Partitioning, ...]:
        """Enumerate delivered partitionings satisfying this requirement.

        For RANGE requirements this enumerates every admissible non-empty
        hash column set, optionally capped at ``max_subset_size`` extra
        columns beyond ``lo`` (used by the property-history expansion of
        Section V, which would otherwise be exponential in wide keys).
        """
        if self.kind is PartReqKind.NONE:
            return (Partitioning.random(),)
        if self.kind is PartReqKind.SERIAL:
            return (Partitioning.serial(),)
        if self.kind is PartReqKind.RANGE_SORTED:
            return tuple(
                Partitioning.ranged(self.sorted_order[: size])
                for size in range(1, len(self.sorted_order) + 1)
            )
        options = []
        free = sorted(self.hi - self.lo)
        limit = len(free) if max_subset_size is None else min(max_subset_size, len(free))
        for size in range(limit + 1):
            for extra in itertools.combinations(free, size):
                cols = self.lo | frozenset(extra)
                if cols:
                    options.append(Partitioning.hashed(cols))
        # Always include the full upper bound even under a cap: it is the
        # locally cheapest choice a conventional optimizer would make, so
        # phase 2 must be able to consider (and beat) it.
        full = Partitioning.hashed(self.hi)
        if full not in options:
            options.append(full)
        return tuple(options)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is PartReqKind.RANGE:
            lo = "{" + ",".join(sorted(self.lo)) + "}"
            hi = "{" + ",".join(sorted(self.hi)) + "}"
            return f"[{lo},{hi}]"
        return self.kind.value


@dataclass(frozen=True)
class SortOrder:
    """A sort order: an ordered tuple of column names (ascending).

    The empty order means "unsorted".  A delivered order satisfies a
    required order iff the requirement is a prefix of the delivery.
    """

    columns: Tuple[str, ...] = ()

    @staticmethod
    def of(*columns: str) -> "SortOrder":
        return SortOrder(tuple(columns))

    @property
    def is_sorted(self) -> bool:
        return bool(self.columns)

    def satisfies(self, required: "SortOrder") -> bool:
        if not required.columns:
            return True
        return self.columns[: len(required.columns)] == required.columns

    def common_prefix(self, other: "SortOrder") -> "SortOrder":
        prefix = []
        for a, b in zip(self.columns, other.columns):
            if a != b:
                break
            prefix.append(a)
        return SortOrder(tuple(prefix))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.columns:
            return "-"
        return "(" + ",".join(self.columns) + ")"


@dataclass(frozen=True)
class PhysicalProps:
    """Delivered physical properties of a plan's output."""

    partitioning: Partitioning = field(default_factory=Partitioning.random)
    #: Sort order *within each partition*.
    sort_order: SortOrder = field(default_factory=SortOrder)

    def satisfies(self, required: "ReqProps") -> bool:
        return required.partitioning.is_satisfied_by(
            self.partitioning
        ) and self.sort_order.satisfies(required.sort_order)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"part={self.partitioning} sort={self.sort_order}"


@dataclass(frozen=True)
class ReqProps:
    """Required physical properties handed down to a group during search.

    This corresponds to the paper's ``ReqProp``.  It is hashable so it can
    key memo winners and the shared-group property history.
    """

    partitioning: PartitioningReq = field(default_factory=PartitioningReq.none)
    sort_order: SortOrder = field(default_factory=SortOrder)

    @staticmethod
    def anything() -> "ReqProps":
        return ReqProps()

    @staticmethod
    def serial() -> "ReqProps":
        return ReqProps(partitioning=PartitioningReq.serial())

    def with_partitioning(self, req: PartitioningReq) -> "ReqProps":
        return ReqProps(partitioning=req, sort_order=self.sort_order)

    def with_sort(self, order: SortOrder) -> "ReqProps":
        return ReqProps(partitioning=self.partitioning, sort_order=order)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"part={self.partitioning} sort={self.sort_order}"


def enforced_props_for(partitioning: Partitioning, sort_order: SortOrder) -> ReqProps:
    """Build the exact requirement that pins down a concrete delivery.

    Used by the re-optimization phase: the property sets stored in a
    shared group's history are concrete layouts, and enforcing one means
    requiring exactly that layout.
    """
    if partitioning.kind is PartitionKind.HASH:
        preq = PartitioningReq.exact(partitioning.columns)
    elif partitioning.kind is PartitionKind.RANGE:
        preq = PartitioningReq.range_sorted(partitioning.order)
    elif partitioning.kind is PartitionKind.SERIAL:
        preq = PartitioningReq.serial()
    else:
        preq = PartitioningReq.none()
    return ReqProps(partitioning=preq, sort_order=sort_order)


def subsets_nonempty(
    columns: Iterable[str], max_size: Optional[int] = None
) -> Iterator[FrozenSet[str]]:
    """Yield all non-empty subsets of ``columns`` (optionally size-capped).

    Helper for the Section V history expansion: the requirement
    ``[∅, {A,B,C}]`` expands to the seven exact requirements over the
    non-empty subsets of ``{A,B,C}``.
    """
    cols = sorted(set(columns))
    limit = len(cols) if max_size is None else min(max_size, len(cols))
    for size in range(1, limit + 1):
        for combo in itertools.combinations(cols, size):
            yield frozenset(combo)
