"""Column pruning over logical plan DAGs.

Narrows every operator to the columns its consumers actually need:
unused extract columns are dropped at the scan, projections shed unused
items, aggregations shed unused aggregate computations (grouping keys
are always kept — dropping one would change the grouping semantics),
and joins carry only their keys plus what flows onward.

Pruning is **sharing-aware**: a node consumed by several parents keeps
the *union* of their requirements and remains a single shared node, so
common-subexpression detection downstream is unaffected.  The pass runs
in two phases — a top-down requirement collection over the DAG followed
by a memoized bottom-up rewrite — and is a semantic no-op: the rows of
every OUTPUT are unchanged (property-tested against the naive oracle).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .logical import (
    LogicalFilter,
    LogicalTopN,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalOutput,
    LogicalPlan,
    LogicalProject,
    LogicalSequence,
    LogicalSpool,
    LogicalUnionAll,
    LogicalExtract,
)


def _required_child_columns(
    node: LogicalPlan, required: FrozenSet[str]
) -> List[FrozenSet[str]]:
    """Columns each child must provide so ``node`` can emit ``required``."""
    op = node.op
    if isinstance(op, LogicalOutput):
        # The output file writes the relation as the script defined it.
        return [frozenset(node.children[0].schema.names)]
    if isinstance(op, LogicalSequence):
        return [frozenset(c.schema.names) for c in node.children]
    if isinstance(op, LogicalFilter):
        return [required | op.predicate.referenced_columns()]
    if isinstance(op, LogicalProject):
        needed: Set[str] = set()
        for item in op.exprs:
            if item.alias in required:
                needed |= item.expr.referenced_columns()
        return [frozenset(needed)]
    if isinstance(op, LogicalGroupBy):
        needed = set(op.keys)
        for agg in op.aggregates:
            if agg.alias in required:
                needed |= agg.referenced_columns()
        return [frozenset(needed)]
    if isinstance(op, LogicalJoin):
        left_names = set(node.children[0].schema.names)
        right_names = set(node.children[1].schema.names)
        left = (required & left_names) | set(op.left_keys)
        right = (required & right_names) | set(op.right_keys)
        return [frozenset(left), frozenset(right)]
    if isinstance(op, LogicalUnionAll):
        # Union is positional and its branches may be shared elsewhere
        # with different requirements, which could desynchronize the
        # branch arities; be conservative and keep branches whole.
        return [frozenset(child.schema.names) for child in node.children]
    if isinstance(op, LogicalTopN):
        # Tie-breaking uses every column: pruning below a TOP would
        # change which rows are selected.
        return [frozenset(node.children[0].schema.names)]
    if isinstance(op, LogicalSpool):
        return [required]
    if isinstance(op, LogicalExtract):
        return []
    raise TypeError(f"no pruning rule for {type(op).__name__}")  # pragma: no cover


def _collect_requirements(root: LogicalPlan) -> Dict[int, Set[str]]:
    """Union of required output columns per DAG node (by identity)."""
    required: Dict[int, Set[str]] = {id(root): set(root.schema.names)}
    order: List[LogicalPlan] = []
    seen: Set[int] = set()

    def topo(node: LogicalPlan) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        order.append(node)
        for child in node.children:
            topo(child)

    topo(root)
    # ``order`` is a pre-order; process parents before children by
    # iterating it directly — every node appears before its descendants
    # *somewhere*, but a shared child may be reached via a later parent,
    # so iterate until the requirement sets stop growing.
    changed = True
    while changed:
        changed = False
        for node in order:
            need = frozenset(required.get(id(node), set(node.schema.names)))
            child_needs = _required_child_columns(node, need)
            for child, child_need in zip(node.children, child_needs):
                bucket = required.setdefault(id(child), set())
                before = len(bucket)
                bucket |= child_need
                if len(bucket) != before:
                    changed = True
    return required


def _ordered(names: Set[str], schema_order: Tuple[str, ...]) -> Tuple[str, ...]:
    return tuple(n for n in schema_order if n in names)


def prune_columns(root: LogicalPlan) -> LogicalPlan:
    """Return an equivalent DAG with unused columns removed.

    Node identity of shared subexpressions is preserved: a node with two
    parents in the input has exactly one (pruned) counterpart in the
    output.
    """
    required = _collect_requirements(root)
    rebuilt: Dict[int, LogicalPlan] = {}

    def rebuild(node: LogicalPlan) -> LogicalPlan:
        cached = rebuilt.get(id(node))
        if cached is not None:
            return cached
        children = [rebuild(child) for child in node.children]
        need = required.get(id(node), set(node.schema.names))
        op = _pruned_op(node, need, children)
        result = LogicalPlan(op, children)
        rebuilt[id(node)] = result
        return result

    return rebuild(root)


def _pruned_op(node: LogicalPlan, need: Set[str],
               children: List[LogicalPlan]) -> LogicalOp:
    op = node.op
    if isinstance(op, LogicalExtract):
        keep = _ordered(need, op.schema.names)
        if not keep:
            # A consumer needs at least row multiplicity (e.g. COUNT(*));
            # keep the narrowest column.
            keep = op.schema.names[:1]
        if keep == op.schema.names:
            return op
        return LogicalExtract(
            op.file_id, op.path, op.extractor, op.schema.project(keep)
        )
    if isinstance(op, LogicalProject):
        keep_items = tuple(i for i in op.exprs if i.alias in need)
        if not keep_items:
            keep_items = op.exprs[:1]
        return LogicalProject(keep_items)
    if isinstance(op, LogicalGroupBy):
        keep_aggs = tuple(a for a in op.aggregates if a.alias in need)
        if keep_aggs == op.aggregates:
            return op
        return LogicalGroupBy(op.keys, keep_aggs, op.mode)
    # Filters, joins, spools, outputs, sequence, union: payload unchanged
    # (their columns were accounted for in the requirement collection).
    return op
