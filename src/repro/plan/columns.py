"""Columns and schemas for the relational algebra layer.

A :class:`Column` is a named, typed attribute of a relation.  A
:class:`Schema` is an ordered list of columns.  Both are immutable and
hashable so they can participate in memo deduplication and in physical
property descriptions (partitioning keys, sort keys).

Column identity is *by name* within a single query DAG.  The SCOPE
resolver (``repro.scope.resolver``) guarantees that names are unique per
relation and that join outputs disambiguate clashing names (``R1.B`` in
the paper's script S3 resolves to the column named ``B`` of the left
input).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple


class ColumnType(enum.Enum):
    """Supported column types.

    The paper's scripts use integer-like log attributes and SUM
    aggregates; we add strings and floats so realistic examples (URLs,
    latencies) type-check.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def width_bytes(self) -> int:
        """Average on-the-wire width used by the cost model."""
        if self is ColumnType.INT:
            return 8
        if self is ColumnType.FLOAT:
            return 8
        return 24


@dataclass(frozen=True, order=True)
class Column:
    """A named, typed attribute.

    Parameters
    ----------
    name:
        Unique name within the relation (after resolution).
    ctype:
        The column's type, used for widths and runtime checks.
    """

    name: str
    ctype: ColumnType = ColumnType.INT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def renamed(self, name: str) -> "Column":
        """Return a copy of this column under a new name."""
        return Column(name, self.ctype)


class Schema:
    """An ordered, immutable list of :class:`Column` objects.

    Supports positional lookup (used by the execution engine, which
    stores rows as tuples) and name lookup (used by the planner).
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column]):
        cols = tuple(columns)
        index = {}
        for pos, col in enumerate(cols):
            if col.name in index:
                raise ValueError(f"duplicate column name {col.name!r} in schema")
            index[col.name] = pos
        self._columns: Tuple[Column, ...] = cols
        self._index = index

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, item) -> bool:
        if isinstance(item, Column):
            return item.name in self._index
        return item in self._index

    def __getitem__(self, key) -> Column:
        if isinstance(key, int):
            return self._columns[key]
        return self._columns[self._index[key]]

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Return the tuple position of column ``name``.

        Raises ``KeyError`` for unknown names, which the resolver turns
        into a user-facing error.
        """
        return self._index[name]

    def get(self, name: str) -> Optional[Column]:
        pos = self._index.get(name)
        return None if pos is None else self._columns[pos]

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema with only ``names``, in the given order."""
        return Schema(self[name] for name in names)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this schema followed by ``other``.

        Name clashes must have been resolved (renamed) beforehand.
        """
        return Schema(self._columns + other._columns)

    def row_width_bytes(self) -> int:
        """Average row width, used by the cost model."""
        return sum(c.ctype.width_bytes for c in self._columns)
