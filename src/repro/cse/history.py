"""Property history of shared groups (paper, Section V).

During the conventional optimization phase (phase 1), every call of
``OptimizeGroup`` on a shared group records the required property set it
was asked for.  Partitioning requirements arrive as *ranges* like
``[∅, {A,B,C}]``; the paper stores one concrete entry per admissible
partitioning scheme (``{A}``, ``{B}``, ..., ``{A,B,C}``) because phase 2
can only *enforce* concrete layouts.

Each entry also carries a frequency counter: the number of times the
entry's layout was the delivered property of a best local plan in
phase 1 — the ranking signal of Section VIII-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..plan.properties import (
    Partitioning,
    PartReqKind,
    PhysicalProps,
    ReqProps,
    SortOrder,
)


@dataclass(frozen=True)
class HistoryEntry:
    """One concrete property set that can be enforced at a shared group."""

    partitioning: Partitioning
    sort_order: SortOrder = field(default_factory=SortOrder)

    def as_req(self) -> ReqProps:
        """The exact requirement pinning this layout down."""
        from ..plan.properties import enforced_props_for

        return enforced_props_for(self.partitioning, self.sort_order)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.sort_order.is_sorted:
            return f"{self.partitioning}/{self.sort_order}"
        return str(self.partitioning)


class PropertyHistory:
    """History of property sets requested at one shared group."""

    def __init__(self, max_subset_size: Optional[int] = 4):
        #: Cap on range expansion: subsets larger than this (beyond the
        #: range's lower bound) are skipped, except the full upper bound
        #: which is always kept (DESIGN.md, decision 3).
        self.max_subset_size = max_subset_size
        self._entries: List[HistoryEntry] = []
        self._seen_reqs: set = set()
        self._index: Dict[HistoryEntry, int] = {}
        self._frequency: Dict[HistoryEntry, int] = {}

    # -- recording (phase 1) ------------------------------------------------

    def record_requirement(self, req: ReqProps) -> None:
        """Record a required property set, expanding partition ranges.

        Matches the paper's example: a requirement ``[∅, {A,B,C}]``
        stores the seven exact entries ``[{A},{A}] ... [{A,B,C},{A,B,C}]``.
        """
        if req in self._seen_reqs:
            return
        self._seen_reqs.add(req)
        preq = req.partitioning
        if preq.kind in (PartReqKind.RANGE, PartReqKind.RANGE_SORTED):
            for part in preq.concrete_partitionings(self.max_subset_size):
                self._add(HistoryEntry(part))
        elif preq.kind is PartReqKind.SERIAL:
            self._add(HistoryEntry(Partitioning.serial()))
        # A requirement with no partitioning component contributes no
        # enforceable layout on its own.

    def note_winner(self, delivered: PhysicalProps) -> None:
        """Count a delivered layout that won a local best plan (§VIII-C)."""
        entry = self._match(delivered.partitioning)
        if entry is not None:
            self._frequency[entry] = self._frequency.get(entry, 0) + 1

    def _match(self, part: Partitioning) -> Optional[HistoryEntry]:
        for entry in self._entries:
            if entry.partitioning == part:
                return entry
        return None

    def _add(self, entry: HistoryEntry) -> None:
        if entry not in self._index:
            self._index[entry] = len(self._entries)
            self._entries.append(entry)

    # -- reading (phase 2) ----------------------------------------------------

    @property
    def entries(self) -> Tuple[HistoryEntry, ...]:
        return tuple(self._entries)

    def frequency_of(self, entry: HistoryEntry) -> int:
        return self._frequency.get(entry, 0)

    def satisfaction_count(self, entry: HistoryEntry) -> int:
        """Recorded consumer requirements this layout satisfies."""
        return sum(
            1
            for req in self._seen_reqs
            if req.partitioning.is_satisfied_by(entry.partitioning)
        )

    def ranked_entries(self) -> Tuple[HistoryEntry, ...]:
        """Entries ordered most-promising first (Section VIII-C).

        The primary signal is how many of the recorded consumer
        requirements a layout satisfies — a layout usable by every
        consumer (the paper's ``{B}`` at the shared node of S1) can
        eliminate all cross-consumer repartitioning and is what phase 2
        exists to find.  Phase-1 winner frequency (the paper's raw
        signal) breaks ties; under our cost model the phase-1 winners
        are exactly the locally-optimal full key sets, so frequency
        alone would rank the layouts phase 2 wants to beat first.  The
        sort is stable, so fully tied entries keep recording order.
        """
        return tuple(
            sorted(
                self._entries,
                key=lambda e: (
                    -self.satisfaction_count(e),
                    -self._frequency.get(e, 0),
                ),
            )
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ", ".join(str(e) for e in self._entries) + "}"
