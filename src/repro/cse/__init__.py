"""The paper's contribution: cost-based common-subexpression exploitation."""

from .fingerprint import (
    CseReport,
    compute_fingerprints,
    identify_common_subexpressions,
    structurally_equal,
)
from .history import HistoryEntry, PropertyHistory
from .merge import (
    BatchMergeError,
    MergedBatch,
    canonicalize,
    merge_scripts,
    referenced_paths,
    script_fingerprint,
)
from .large_scripts import (
    RoundPlanReport,
    cartesian_rounds,
    grouped_rounds,
    round_plan,
    round_plans,
    sequential_rounds,
)
from .pipeline import (
    CseOptimizationResult,
    OptimizationFailure,
    optimize_conventional,
    optimize_local_best,
    optimize_with_cse,
)
from .propagation import (
    PropagationResult,
    ShrdGrp,
    compute_shared_reach,
    propagate_shared_groups,
)

__all__ = [name for name in dir() if not name.startswith("_")]
