"""The four-step CSE optimization pipeline (paper, Figure 2).

1. **Identify common subexpressions** — fingerprints + Algorithm 1,
   before the first optimization phase (``repro.cse.fingerprint``).
2. **Record physical properties** — during the conventional phase 1,
   every visit of a shared group stores the required property set
   (``repro.cse.history``; hooked inside the engine).
3. **Propagate shared-group information and identify LCAs** — Algorithm
   3 (``repro.cse.propagation``).
4. **Re-optimize enforcing physical properties** — phase 2 rounds at the
   LCA groups (engine's ``_optimize_with_rounds``).

The final plan is the cheapest over both phases ("The optimizer will
select the plan with the lowest cost.  This plan could have been
generated in any phase", Section VII), priced with the DAG-aware cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.tracer import NULL_TRACER
from ..optimizer.cardinality import annotate_memo
from ..optimizer.engine import (
    PHASE_CONVENTIONAL,
    PHASE_CSE,
    OptimizerConfig,
    SearchEngine,
)
from ..optimizer.memo import Memo
from ..plan.logical import LogicalPlan
from ..plan.properties import ReqProps
from ..plan.physical import PhysicalPlan
from ..scope.catalog import Catalog
from ..verify import check_plan
from .fingerprint import CseReport, identify_common_subexpressions
from .propagation import PropagationResult, propagate_shared_groups


@dataclass
class CseOptimizationResult:
    """Everything the pipeline produced, for inspection and tests."""

    #: The final chosen plan (cheapest across phases, DAG-costed).
    plan: PhysicalPlan
    #: DAG cost of the chosen plan.
    cost: float
    #: The phase-1 (conventional, but spool-aware) plan and its cost.
    phase1_plan: Optional[PhysicalPlan]
    phase1_cost: float
    #: The phase-2 (enforced) plan and its cost, if any was produced.
    phase2_plan: Optional[PhysicalPlan]
    phase2_cost: float
    #: Which phase the chosen plan came from (1 or 2).
    chosen_phase: int
    report: CseReport
    propagation: PropagationResult
    engine: SearchEngine
    memo: Memo
    #: Cost of the fully conventional (un-spooled) fallback, if it ran.
    #: Inserting SPOOL groups can block logical rewrites (a filter
    #: cannot be pushed through a shared materialization point), so the
    #: pipeline also prices the plan of an untouched memo and never
    #: returns anything worse than it.
    fallback_cost: float = float("inf")
    #: The memo whose group ids the *chosen* plan refers to.  Usually
    #: ``memo``, but when the conventional fallback wins the chosen plan
    #: was built against a different (un-spooled) memo — anything
    #: mapping the plan's ``group_id``s back to groups (cardinality
    #: feedback capture, re-costing) must use this one.
    plan_memo: Optional[Memo] = None

    def __post_init__(self):
        if self.plan_memo is None:
            self.plan_memo = self.memo

    def verify_phases(self) -> None:
        """Statically verify every plan the pipeline produced.

        Raises :class:`repro.verify.PlanVerificationError` naming the
        offending phase — catching a phase-2 bug even when the cheaper
        phase-1 plan was ultimately chosen.
        """
        if self.phase1_plan is not None:
            check_plan(self.phase1_plan, "phase-1 plan")
        if self.phase2_plan is not None:
            check_plan(self.phase2_plan, "phase-2 plan")
        check_plan(self.plan, f"chosen plan (phase {self.chosen_phase})")


class OptimizationFailure(RuntimeError):
    """The engine produced no feasible plan (indicates a planner bug)."""


def optimize_with_cse(
    logical: LogicalPlan,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    verify: bool = False,
    tracer=NULL_TRACER,
    corrections=None,
) -> CseOptimizationResult:
    """Run the full pipeline of Figure 2 on a logical script DAG.

    With ``verify`` the plans of *both* phases (and the chosen plan) are
    statically checked via :mod:`repro.verify` before returning.

    ``tracer`` records one span per pipeline step (``cse.detect``,
    ``optimize.phase1``, ``cse.propagate``, ``optimize.phase2``,
    ``optimize.fallback``) carrying group counts, costs and round
    counters; when the engine's own trace is enabled its events are
    published onto the tracer's shared bus.

    ``corrections`` is an optional published
    :class:`repro.stats.store.CorrectionSet` of learned cardinalities;
    it reaches every estimator this pipeline creates (both phases and
    the conventional fallback), so all candidate plans are priced under
    the same statistics.
    """
    memo = Memo.from_logical_plan(logical)

    # Step 1 — before the first optimization phase.
    with tracer.span("cse.detect") as span:
        report = identify_common_subexpressions(memo)
        span.set(
            shared_groups=len(report.shared_groups),
            explicit=len(report.explicit_shared),
            merged=len(report.merged),
        )

    engine = SearchEngine(memo, catalog, config, corrections=corrections)
    engine.bind_observability(tracer)
    annotate_memo(memo, engine.estimator)

    # Phase 1 (Step 2 happens inside: history recording at shared groups).
    with tracer.span("optimize.phase1") as span:
        phase1_plan = engine.optimize(PHASE_CONVENTIONAL)
        if phase1_plan is None:
            raise OptimizationFailure("phase 1 produced no plan")
        phase1_cost = engine.plan_cost(phase1_plan)
        span.set(cost=phase1_cost,
                 groups_optimized=engine.stats.groups_optimized)

    # Step 3 — right before the re-optimizations begin.
    with tracer.span("cse.propagate") as span:
        propagation = propagate_shared_groups(memo)
        engine.refresh_cse_annotations(propagation.independent_sets)
        span.set(lcas=len(propagation.lca))

    # Step 4 — phase 2.
    with tracer.span("optimize.phase2") as span:
        phase2_plan = engine.optimize(PHASE_CSE)
        phase2_cost = (
            engine.plan_cost(phase2_plan)
            if phase2_plan is not None else float("inf")
        )
        span.set(cost=phase2_cost, rounds=engine.stats.rounds,
                 budget_exhausted=engine.stats.budget_exhausted)

    if phase2_plan is not None and phase2_cost < phase1_cost:
        plan, cost, chosen = phase2_plan, phase2_cost, 2
    else:
        plan, cost, chosen = phase1_plan, phase1_cost, 1

    # Final guard: SPOOL insertion can block logical rewrites (e.g.
    # pushing a filter through a now-shared projection), so the spooled
    # memo's best plan may be worse than plain conventional optimization.
    # Price the untouched memo too and keep the cheapest overall.
    with tracer.span("optimize.fallback") as span:
        fallback = optimize_conventional(logical, catalog, config,
                                         corrections=corrections)
        span.set(cost=fallback.cost)
    plan_memo = memo
    if fallback.cost < cost:
        plan, cost, chosen = fallback.plan, fallback.cost, 1
        plan_memo = fallback.memo

    result = CseOptimizationResult(
        plan=plan,
        cost=cost,
        phase1_plan=phase1_plan,
        phase1_cost=phase1_cost,
        phase2_plan=phase2_plan,
        phase2_cost=phase2_cost,
        chosen_phase=chosen,
        report=report,
        propagation=propagation,
        engine=engine,
        memo=memo,
        fallback_cost=fallback.cost,
        plan_memo=plan_memo,
    )
    if verify:
        result.verify_phases()
    return result


def optimize_local_best(
    logical: LogicalPlan,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    verify: bool = False,
    corrections=None,
) -> CseOptimizationResult:
    """The related-work baseline: share, but choose properties locally.

    Prior multi-query-optimization approaches ([10]–[12] in the paper)
    identify common subexpressions but "select the plan that locally
    minimizes the cost of the shared subexpression" (Section I) — for
    S1 that is repartitioning on the full key set, after which each
    consumer must repartition the shared result again.

    Implementation: Steps 1–2 run as in the full pipeline; then, instead
    of LCA rounds, each shared group is pinned to the history entry
    whose *own* subtree is cheapest (ties broken toward more
    partitioning columns — the maximum-parallelism choice a local
    optimizer makes), and the script is re-optimized once under those
    enforcements.  No consumer feedback is taken into account, which is
    precisely what the paper's phase 2 adds.
    """
    memo = Memo.from_logical_plan(logical)
    report = identify_common_subexpressions(memo)

    engine = SearchEngine(memo, catalog, config, corrections=corrections)
    annotate_memo(memo, engine.estimator)

    phase1_plan = engine.optimize(PHASE_CONVENTIONAL)
    if phase1_plan is None:
        raise OptimizationFailure("phase 1 produced no plan")
    phase1_cost = engine.plan_cost(phase1_plan)

    # Pin every shared group to its locally cheapest enforceable layout.
    ctx = {}
    for group in memo.shared_groups():
        history = group.history
        if history is None or not len(history):
            continue
        best_entry = None
        best_key = None
        for entry in history.entries:
            plan = engine.optimize_group(
                group.gid, entry.as_req(), {}, PHASE_CONVENTIONAL
            )
            if plan is None:
                continue
            cols = (
                len(entry.partitioning.columns)
                if entry.partitioning.kind.value == "hash"
                else 0
            )
            key = (engine.plan_cost(plan), -cols)
            if best_key is None or key < best_key:
                best_key = key
                best_entry = entry
        if best_entry is not None:
            ctx[group.gid] = best_entry

    # One enforcement pass, no rounds (no LCA links are installed, so
    # the phase-2 machinery only applies the pinned layouts).
    engine.refresh_cse_annotations({})
    local_plan = engine.optimize_group(memo.root, ReqProps.anything(), ctx,
                                       PHASE_CSE) if ctx else None
    local_cost = (
        engine.plan_cost(local_plan) if local_plan is not None else float("inf")
    )

    if local_plan is not None and local_cost < phase1_cost:
        plan, cost = local_plan, local_cost
    else:
        plan, cost = phase1_plan, phase1_cost

    result = CseOptimizationResult(
        plan=plan,
        cost=cost,
        phase1_plan=phase1_plan,
        phase1_cost=phase1_cost,
        phase2_plan=local_plan,
        phase2_cost=local_cost,
        chosen_phase=2 if plan is local_plan else 1,
        report=report,
        propagation=PropagationResult({}, {}, {}, {}, {}),
        engine=engine,
        memo=memo,
    )
    if verify:
        result.verify_phases()
    return result


def optimize_conventional(
    logical: LogicalPlan,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    verify: bool = False,
    tracer=NULL_TRACER,
    corrections=None,
) -> CseOptimizationResult:
    """Baseline: the original SCOPE optimizer, no CSE machinery at all.

    No spool insertion, no history, no phase 2 — a shared relation is
    optimized independently per consumer and executed once per consumer,
    the duplicated pipelines of Figure 8(a).
    """
    memo = Memo.from_logical_plan(logical)
    engine = SearchEngine(memo, catalog, config, corrections=corrections)
    engine.bind_observability(tracer)
    annotate_memo(memo, engine.estimator)
    with tracer.span("optimize.phase1") as span:
        plan = engine.optimize(PHASE_CONVENTIONAL)
        if plan is None:
            raise OptimizationFailure(
                "conventional optimization produced no plan"
            )
        cost = engine.plan_cost(plan)
        span.set(cost=cost, groups_optimized=engine.stats.groups_optimized)
    if verify:
        check_plan(plan, "conventional plan")
    return CseOptimizationResult(
        plan=plan,
        cost=cost,
        phase1_plan=plan,
        phase1_cost=cost,
        phase2_plan=None,
        phase2_cost=float("inf"),
        chosen_phase=1,
        report=CseReport(),
        propagation=PropagationResult({}, {}, {}, {}, {}),
        engine=engine,
        memo=memo,
    )
