"""Propagating shared-group information and identifying LCAs.

Implements Algorithm 3 of the paper (Section VI): a bottom-up traversal
of the operator DAG that attaches to every group the list of shared
groups below it (with consumer bookkeeping) and identifies, for each
shared group, the **LCA** of its consumers — the lowest group contained
in *every* path from a consumer to the root (Definition 2).  The LCA is
where phase 2 starts its enforcement rounds.

Two deliberate points:

* The traversal runs over the **initial** expression of each group —
  the original operator DAG of the script, which is what the paper's
  Figures 3–5 annotate.  Alternatives added by exploration (e.g. the
  local pre-aggregation groups) share their children with the initial
  expressions and are handled separately by
  :func:`compute_shared_reach`.
* ``SetLCA`` overwrites: the final winner is the *highest* merge point
  of consumer information, which is provably on every consumer→root
  path (any split above a merge would re-merge again below the root and
  fire another overwrite).  This reproduces Figure 3(c), where the LCA
  (group 10) is not the lowest common ancestor (group 6).

The module also detects **independent shared groups** (Definition 3,
Section VIII-A): shared groups with the same LCA whose consuming-path
sub-DAGs overlap only at/above the LCA, allowing phase 2 to optimize
them greedily one at a time instead of over the full cartesian product
of property combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..optimizer.memo import Memo


@dataclass
class ShrdGrp:
    """Bookkeeping node for one shared group, attached to an ancestor.

    ``all_consumers`` is the full consumer set of the shared group (its
    parent groups in the operator DAG); ``found`` accumulates the
    consumers already seen below the group this node is attached to.
    """

    grp_no: int
    all_consumers: FrozenSet[int]
    found: Set[int] = field(default_factory=set)

    def all_found(self) -> bool:
        return self.all_consumers <= self.found

    def copy(self) -> "ShrdGrp":
        return ShrdGrp(self.grp_no, self.all_consumers, set(self.found))


@dataclass
class PropagationResult:
    """Outcome of Algorithm 3 over one memo."""

    #: shared gid -> LCA gid (None if the shared group has < 2 consumers
    #: reachable from the root, which Algorithm 1 should prevent).
    lca: Dict[int, Optional[int]]
    #: shared gid -> consumer gids (parents in the initial DAG).
    consumers: Dict[int, FrozenSet[int]]
    #: gid -> ShrdGrp list attached by the propagation (for inspection
    #: and tests reproducing the annotations of Figure 3).
    shared_below: Dict[int, List[ShrdGrp]]
    #: LCA gid -> groups ordered as they will be enforced.
    lca_to_shared: Dict[int, List[int]]
    #: LCA gid -> list of *independent sets* of its shared groups
    #: (Definition 3); singleton sets mean fully independent.
    independent_sets: Dict[int, List[FrozenSet[int]]]


def _initial_children(memo: Memo, gid: int) -> tuple:
    return memo.group(gid).initial_expr.children


def _initial_parents(memo: Memo) -> Dict[int, Set[int]]:
    parents: Dict[int, Set[int]] = {}
    seen: Set[int] = set()
    stack = [memo.root]
    while stack:
        gid = stack.pop()
        if gid in seen:
            continue
        seen.add(gid)
        for child in _initial_children(memo, gid):
            parents.setdefault(child, set()).add(gid)
            stack.append(child)
    return parents


def propagate_shared_groups(memo: Memo) -> PropagationResult:
    """Run Algorithm 3 from the memo root.

    Also stores the resulting ``shared_below`` lists and ``lca_for``
    links on the memo groups so the engine can use them directly.
    """
    parents = _initial_parents(memo)
    lca: Dict[int, Optional[int]] = {}
    shared_below: Dict[int, List[ShrdGrp]] = {}
    consumers: Dict[int, FrozenSet[int]] = {}
    visited: Set[int] = set()

    for group in memo.shared_groups():
        consumers[group.gid] = frozenset(parents.get(group.gid, set()))
        lca[group.gid] = None

    def visit(gid: int) -> None:
        if gid in visited:
            return
        visited.add(gid)
        own: List[ShrdGrp] = []
        shared_below[gid] = own
        group = memo.group(gid)
        if group.is_shared:
            own.append(ShrdGrp(gid, consumers[gid]))

        for input_gid in _initial_children(memo, gid):
            visit(input_gid)
            for shrd_i in shared_below[input_gid]:
                match = None
                for shrd_g in own:
                    if shrd_g.grp_no == shrd_i.grp_no:
                        match = shrd_g
                        break
                if match is not None:
                    match.found |= shrd_i.found
                    if input_gid == shrd_i.grp_no:
                        # This group consumes the shared group directly.
                        match.found.add(gid)
                    if match.all_found():
                        # Potential LCA; later (higher) merges overwrite.
                        lca[match.grp_no] = gid
                else:
                    copy = shrd_i.copy()
                    if input_gid == shrd_i.grp_no:
                        copy.found.add(gid)
                    if input_gid == shrd_i.grp_no and copy.all_found():
                        # Degenerate but possible: a single group is the
                        # only consumer of the shared group (e.g. a
                        # self-join of a shared relation).
                        lca[copy.grp_no] = gid
                    own.append(copy)

    visit(memo.root)

    lca_to_shared: Dict[int, List[int]] = {}
    for shared_gid, lca_gid in lca.items():
        if lca_gid is not None:
            lca_to_shared.setdefault(lca_gid, []).append(shared_gid)

    independent_sets = _independent_sets(memo, lca_to_shared, shared_below)

    # Annotate the memo for the engine.
    for group in memo.live_groups():
        group.shared_below = shared_below.get(group.gid, [])
        group.lca_for = sorted(lca_to_shared.get(group.gid, []))

    return PropagationResult(
        lca=lca,
        consumers=consumers,
        shared_below=shared_below,
        lca_to_shared={k: sorted(v) for k, v in lca_to_shared.items()},
        independent_sets=independent_sets,
    )


def _independent_sets(
    memo: Memo,
    lca_to_shared: Dict[int, List[int]],
    shared_below: Dict[int, List[ShrdGrp]],
) -> Dict[int, List[FrozenSet[int]]]:
    """Partition each LCA's shared groups into independent sets.

    Following Section VIII-A: take the shared-group lists below each
    *input* of the LCA (restricted to groups whose LCA this is) and
    iteratively merge the sets that overlap.  Shared groups that never
    co-occur under one input end up in different (independent) sets.
    """
    result: Dict[int, List[FrozenSet[int]]] = {}
    for lca_gid, shared_gids in lca_to_shared.items():
        mine = set(shared_gids)
        input_sets: List[Set[int]] = []
        for input_gid in _initial_children(memo, lca_gid):
            below = {
                s.grp_no for s in shared_below.get(input_gid, []) if s.grp_no in mine
            }
            if below:
                input_sets.append(below)
        # A shared group can also be a direct input of the LCA itself.
        for gid in mine:
            if not any(gid in s for s in input_sets):
                input_sets.append({gid})
        merged: List[Set[int]] = []
        for current in input_sets:
            overlapping = [s for s in merged if s & current]
            for s in overlapping:
                merged.remove(s)
                current = current | s
            merged.append(current)
        result[lca_gid] = [frozenset(s) for s in merged]
    return result


def compute_shared_reach(memo: Memo) -> Dict[int, FrozenSet[int]]:
    """Shared groups reachable from each group via *any* expression.

    This is the projection domain of the enforcement context in the
    winner cache (DESIGN.md, decision 1): two optimizations of a group
    may share a winner iff the enforcement maps agree on the shared
    groups its full expression space can reach.
    """
    reach: Dict[int, FrozenSet[int]] = {}

    def visit(gid: int, in_progress: Set[int]) -> FrozenSet[int]:
        cached = reach.get(gid)
        if cached is not None:
            return cached
        if gid in in_progress:  # pragma: no cover - memo DAGs are acyclic
            return frozenset()
        in_progress.add(gid)
        group = memo.group(gid)
        acc: Set[int] = set()
        if group.is_shared:
            acc.add(gid)
        for expr in group.exprs:
            for child in expr.children:
                acc |= visit(child, in_progress)
        in_progress.discard(gid)
        result = frozenset(acc)
        reach[gid] = result
        return result

    for group in memo.live_groups():
        visit(group.gid, set())
    return reach
