"""Analysis helpers for the large-script techniques (paper, Section VIII).

The mechanisms themselves live where they act:

* VIII-A (independent shared groups) — detection in
  ``repro.cse.propagation._independent_sets``, greedy round generation
  in ``SearchEngine._optimize_with_rounds``;
* VIII-B (ranking shared groups by repartitioning savings) —
  ``SearchEngine._ordered_shared``;
* VIII-C (ranking property sets by phase-1 frequency) —
  ``PropertyHistory.ranked_entries``;
* the optimization budget — ``repro.optimizer.engine.Budget``.

This module provides the *round-count arithmetic* those techniques are
about, so tests and benchmarks can check statements like the paper's
Figure 5 example: two independent shared groups with 8 property sets
each take 15 rounds instead of 64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..optimizer.engine import SearchEngine


def cartesian_rounds(history_sizes: Sequence[int]) -> int:
    """Rounds of the base algorithm: the full cartesian product."""
    total = 1
    for size in history_sizes:
        total *= max(size, 1)
    return total


def sequential_rounds(history_sizes: Sequence[int]) -> int:
    """Rounds with independent-group exploitation (Section VIII-A).

    The first group is swept with every other group pinned to its
    initial property set; each later group is swept with the earlier
    groups pinned to their winners — and the all-initials combination is
    evaluated only once, hence the ``- (k - 1)``::

        8 + 8  ->  8 + (8 - 1) = 15   (the paper's Figure 5 example)
    """
    sizes = [max(s, 1) for s in history_sizes]
    if not sizes:
        return 0
    return sizes[0] + sum(s - 1 for s in sizes[1:])


def grouped_rounds(unit_history_sizes: Sequence[Sequence[int]]) -> int:
    """Rounds when some shared groups are mutually dependent.

    Each *unit* (an independent set of shared groups) is explored as a
    cartesian product; across units the search is greedy.  With all
    units singletons this reduces to :func:`sequential_rounds`; with a
    single unit it is :func:`cartesian_rounds`.
    """
    unit_products = [cartesian_rounds(sizes) for sizes in unit_history_sizes]
    return sequential_rounds(unit_products) if unit_products else 0


@dataclass
class RoundPlanReport:
    """How phase 2 will sweep the shared groups of one LCA."""

    lca: int
    #: Units in the order they will be swept, with history sizes.
    units: List[List[int]]
    unit_history_sizes: List[List[int]]
    planned_rounds: int
    cartesian_equivalent: int


def round_plan(engine: SearchEngine, lca_gid: int) -> RoundPlanReport:
    """Predict phase-2 round counts for an LCA after phase 1 has run."""
    group = engine.memo.group(lca_gid)
    ordered = engine._ordered_shared(list(group.lca_for))
    ordered = [g for g in ordered if engine._entries_for(g)]
    units = engine._independent_partition(lca_gid, ordered)
    sizes = [[len(engine._entries_for(g)) for g in unit] for unit in units]
    return RoundPlanReport(
        lca=lca_gid,
        units=units,
        unit_history_sizes=sizes,
        planned_rounds=grouped_rounds(sizes),
        cartesian_equivalent=cartesian_rounds(
            [len(engine._entries_for(g)) for g in ordered]
        ),
    )


def round_plans(engine: SearchEngine) -> Dict[int, RoundPlanReport]:
    """Round predictions for every LCA in the engine's memo."""
    return {
        group.gid: round_plan(engine, group.gid)
        for group in engine.memo.live_groups()
        if group.lca_for
    }
