"""Cross-script canonicalization, merging and whole-script fingerprints.

The fingerprints of :mod:`repro.cse.fingerprint` implement the paper's
Definition 1: deliberately *coarse*, type-level hashes used as a fast
filter inside one memo.  A plan-cache service needs the opposite — an
**exact**, payload-level identity for a whole script, stable across
textual accidents (whitespace, statement names) so equivalent requests
share one cache entry.  This module provides that identity plus the
cross-script merge that turns a batch of scripts into one logical DAG:

* :func:`canonicalize` — hash-conses a logical DAG: structurally
  identical subtrees become *one shared node*.  Because relation names
  never survive compilation, two scripts that differ only in
  intermediate names (or in statement order that does not change the
  DAG) canonicalize to identical plans.  Canonicalizing before column
  pruning is what lets pruning union the requirements of cross-script
  consumers instead of specializing each copy apart.
* :func:`script_fingerprint` — a deep SHA-256 over operator payloads
  (keys, predicates, files, schemas) and DAG structure; the cache key of
  :class:`repro.service.QueryService`.
* :func:`merge_scripts` — rewrites each script's OUTPUT paths under a
  per-script label, ties every terminal under one Sequence root and
  hash-conses across the whole batch, so the existing CSE machinery
  (Algorithm 1 onward) finds *cross-script* common subexpressions with
  no further changes — the "shared execution" setting of Marroquín et
  al. and the batched MQO setting of Roy et al.
* :func:`referenced_paths` — the input files a script reads; the
  service's statistics-invalidation granularity.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..plan.columns import Schema
from ..plan.logical import (
    LogicalExtract,
    LogicalOutput,
    LogicalPlan,
    LogicalSequence,
)

#: Deep scripts (LS2 has >1000 operators) recurse through the
#: canonicalizer; mirror the API layer's headroom.
_MIN_RECURSION_LIMIT = 20_000


def _ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


class _Interner:
    """Hash-conses logical plan nodes by structural identity.

    Two nodes are identical iff their operator payloads compare equal
    (all payloads are frozen dataclasses) and their canonicalized
    children are the *same objects* — so equality checks are shallow and
    the walk is linear in DAG size.
    """

    def __init__(self):
        self._by_key: Dict[tuple, LogicalPlan] = {}
        self._seen: Dict[int, LogicalPlan] = {}

    def intern(self, node: LogicalPlan) -> LogicalPlan:
        hit = self._seen.get(id(node))
        if hit is not None:
            return hit
        children = [self.intern(child) for child in node.children]
        key = (node.op, tuple(id(child) for child in children))
        canon = self._by_key.get(key)
        if canon is None:
            # Identity (not ==) on children: a value-equal but distinct
            # child list means this node must be rebuilt to point at the
            # shared canonical children.
            same = len(children) == len(node.children) and all(
                a is b for a, b in zip(children, node.children)
            )
            canon = node if same else LogicalPlan(node.op, children)
            self._by_key[key] = canon
        self._seen[id(node)] = canon
        return canon


def canonicalize(plan: LogicalPlan, _interner: Optional[_Interner] = None
                 ) -> LogicalPlan:
    """Deduplicate structurally identical subtrees into shared nodes.

    The result computes exactly what ``plan`` computes; textual
    duplicates simply become the *explicitly shared* nodes of
    Algorithm 1 instead of waiting for the fingerprint pass — and,
    crucially, they are shared *before* column pruning runs.
    """
    _ensure_recursion_headroom()
    return (_interner or _Interner()).intern(plan)


# ---------------------------------------------------------------------------
# Whole-script fingerprints
# ---------------------------------------------------------------------------


def _token(value) -> str:
    """Deterministic, payload-complete serialization of a field value."""
    if isinstance(value, Schema):
        cols = ",".join(f"{c.name}:{c.ctype.value}" for c in value)
        return f"[{cols}]"
    if isinstance(value, tuple):
        return "(" + ",".join(_token(v) for v in value) + ")"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _payload_token(value)
    return repr(value)


def _payload_token(obj) -> str:
    """Canonical description of a dataclass payload (operator or expr)."""
    fields = ",".join(
        f"{f.name}={_token(getattr(obj, f.name))}"
        for f in dataclasses.fields(obj)
    )
    return f"{type(obj).__name__}({fields})"


def script_fingerprint(plan: LogicalPlan) -> str:
    """Exact whole-script fingerprint (64 hex chars).

    A deep SHA-256 over every operator's full payload and the DAG
    structure.  Unlike Definition 1's type-level fingerprints this is a
    *cache identity*: collisions would serve a wrong plan, so payloads
    (grouping keys, predicates, file ids, schemas) are hashed in full.
    Sharing does not perturb the value — a tree-expanded duplicate and a
    shared node hash identically — so fingerprints computed before and
    after :func:`canonicalize` agree.
    """
    _ensure_recursion_headroom()
    digests: Dict[int, str] = {}

    def visit(node: LogicalPlan) -> str:
        cached = digests.get(id(node))
        if cached is not None:
            return cached
        parts = [_payload_token(node.op)]
        parts.extend(visit(child) for child in node.children)
        digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
        digests[id(node)] = digest
        return digest

    return visit(plan)


def referenced_paths(plan: LogicalPlan) -> Tuple[str, ...]:
    """Sorted input-file paths a logical DAG extracts from."""
    return tuple(sorted({
        node.op.path
        for node in plan.iter_nodes()
        if isinstance(node.op, LogicalExtract)
    }))


# ---------------------------------------------------------------------------
# Cross-script merging
# ---------------------------------------------------------------------------


class BatchMergeError(ValueError):
    """A batch cannot be merged into one logical DAG."""


@dataclass(frozen=True)
class MergedBatch:
    """A batch of scripts merged into one logical DAG.

    ``output_maps[i]`` maps the merged plan's (label-prefixed) output
    paths back to script *i*'s original paths, in script order.
    """

    plan: LogicalPlan
    labels: Tuple[str, ...]
    output_maps: Tuple[Tuple[Tuple[str, str], ...], ...]

    @property
    def n_scripts(self) -> int:
        return len(self.labels)

    def split_outputs(self, outputs: Dict[str, object]
                      ) -> List[Dict[str, object]]:
        """Cut a merged execution's outputs back into per-script dicts."""
        return [
            {original: outputs[prefixed] for prefixed, original in omap}
            for omap in self.output_maps
        ]


def _terminals(plan: LogicalPlan) -> List[LogicalPlan]:
    """A compiled script's OUTPUT nodes (unwrapping the Sequence root)."""
    nodes = (
        list(plan.children)
        if isinstance(plan.op, LogicalSequence) else [plan]
    )
    for node in nodes:
        if not isinstance(node.op, LogicalOutput):
            raise BatchMergeError(
                f"script terminal is {node.op.name}, expected Output "
                "(merge operates on compiled scripts)"
            )
    return nodes


def uniquify_labels(labels: Sequence[str]) -> List[str]:
    """Make a label list unique by suffixing repeats with ``#2, #3, ...``.

    Streaming admission can legitimately enqueue the same script (and
    hence the same caller-derived label) twice in one window; label
    prefixes are the namespace that keeps each submission's outputs
    separate, so collisions are resolved instead of rejected.  The
    first occurrence keeps its name; suffixes are chosen to never
    collide with labels that appear later in the list.
    """
    taken = set()
    result: List[str] = []
    counts: Dict[str, int] = {}
    remaining: Dict[str, int] = {}
    for label in labels:
        remaining[label] = remaining.get(label, 0) + 1
    for label in labels:
        remaining[label] -= 1
        candidate = label
        while candidate in taken or (candidate != label
                                     and remaining.get(candidate, 0)):
            counts[label] = counts.get(label, 1) + 1
            candidate = f"{label}#{counts[label]}"
        taken.add(candidate)
        result.append(candidate)
    return result


def merge_scripts(
    plans: Sequence[LogicalPlan],
    labels: Optional[Sequence[str]] = None,
    *,
    uniquify: bool = False,
) -> MergedBatch:
    """Merge compiled scripts into one logical DAG with namespaced outputs.

    Every OUTPUT path of script *i* is rewritten to ``<label>/<path>``
    (labels default to ``q0, q1, ...``) so outputs of different scripts
    never collide; all terminals are tied under a single Sequence root
    and the whole forest is hash-consed, turning cross-script duplicates
    into shared nodes the CSE pipeline spools exactly once.

    Labels must not contain ``/`` — the separator that cuts a prefixed
    path back into (label, original path) for output routing and vertex
    ``serves`` attribution.  Duplicate labels are an error unless
    ``uniquify=True``, which resolves them via :func:`uniquify_labels`
    (the streaming-admission setting, where the same script may be
    enqueued twice in one window).
    """
    if not plans:
        raise BatchMergeError("cannot merge an empty batch")
    if labels is None:
        labels = [f"q{i}" for i in range(len(plans))]
    labels = [str(label) for label in labels]
    if len(labels) != len(plans):
        raise BatchMergeError(
            f"{len(plans)} scripts but {len(labels)} labels"
        )
    bad = [label for label in labels if "/" in label]
    if bad:
        raise BatchMergeError(
            f"batch labels must not contain '/', got {bad} (the label "
            "is the output-path namespace separator)"
        )
    if len(set(labels)) != len(labels):
        if not uniquify:
            raise BatchMergeError(
                f"batch labels must be unique, got {labels} "
                "(pass uniquify=True to auto-suffix duplicates)"
            )
        labels = uniquify_labels(labels)

    outputs: List[LogicalPlan] = []
    output_maps: List[Tuple[Tuple[str, str], ...]] = []
    seen_paths: set = set()
    for label, plan in zip(labels, plans):
        omap: List[Tuple[str, str]] = []
        for terminal in _terminals(plan):
            op = terminal.op
            prefixed = f"{label}/{op.path}"
            if prefixed in seen_paths:
                raise BatchMergeError(
                    f"script {label!r} writes {op.path!r} more than once"
                )
            seen_paths.add(prefixed)
            outputs.append(LogicalPlan(
                LogicalOutput(prefixed, op.sort_columns),
                list(terminal.children),
            ))
            omap.append((prefixed, op.path))
        output_maps.append(tuple(omap))

    merged = (
        outputs[0] if len(outputs) == 1
        else LogicalPlan(LogicalSequence(len(outputs)), outputs)
    )
    return MergedBatch(
        plan=canonicalize(merged),
        labels=tuple(labels),
        output_maps=tuple(output_maps),
    )
