"""Expression fingerprints and common-subexpression identification.

Implements Section IV of the paper:

* **Definition 1** — the fingerprint of an expression rooted at ``R``::

      F(E) = R.FileID mod N                       if R reads a data file
      F(E) = (R.OpID xor xor_i F(child_i)) mod N  otherwise

  ``OpID`` identifies the *operation type* ("all group-by operations
  have the same OpID"), so two group-bys with different keys over the
  same input collide — the fingerprint is a fast, coarse filter and the
  bucket-verification step performs the exact structural comparison.

* **Algorithm 1** — ``IdentifyCommonSubexpressions``: first handle the
  explicitly shared groups (a group referenced by two or more parents),
  then fingerprint every memo subexpression bottom-up, compare colliding
  bucket entries structurally, merge verified duplicates down to one
  copy, and put a shared SPOOL group on top of each surviving common
  subexpression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..optimizer.memo import Memo
from ..plan.logical import LogicalExtract, LogicalSpool

#: A Mersenne prime comfortably larger than any OpID/FileID (Definition
#: 1 requires N "large enough to prevent collisions among the values of
#: FileIDs and OpIDs").
FINGERPRINT_MODULUS = (1 << 61) - 1


def _mix(value: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finalizer).

    Spreads the small consecutive OP_TYPE_IDs / FileIDs over the hash
    space so unrelated operators do not land in the same bucket, while
    keeping the per-*type* (not per-payload) identity Definition 1 asks
    for.
    """
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def op_id(op) -> int:
    """The type-level operation identifier of Definition 1."""
    return _mix(0x5EED0000 + op.OP_TYPE_ID)


def file_id(op: LogicalExtract) -> int:
    return _mix(0xF11E0000 + op.file_id)


def compute_fingerprints(memo: Memo) -> Dict[int, int]:
    """Fingerprints of every memo subexpression, bottom-up.

    Uses the initial (and at this stage only) expression of each group,
    as Algorithm 1 prescribes.
    """
    fingerprints: Dict[int, int] = {}

    def visit(gid: int) -> int:
        cached = fingerprints.get(gid)
        if cached is not None:
            return cached
        expr = memo.group(gid).initial_expr
        if isinstance(expr.op, LogicalExtract):
            value = file_id(expr.op) % FINGERPRINT_MODULUS
        else:
            acc = op_id(expr.op)
            for child in expr.children:
                acc ^= visit(child)
            value = acc % FINGERPRINT_MODULUS
        fingerprints[gid] = value
        return value

    for gid in memo.reachable_from_root():
        visit(gid)
    return fingerprints


def structurally_equal(memo: Memo, a: int, b: int, _cache=None) -> bool:
    """Exact recursive comparison of two memo subexpressions.

    This is the bucket-verification step of Algorithm 1 (line 5):
    fingerprint collisions are only *potentially* equal; equality
    requires identical operator payloads (keys, predicates, files) and
    pairwise-equal children in order.
    """
    if _cache is None:
        _cache = {}
    if a == b:
        return True
    key = (a, b) if a < b else (b, a)
    cached = _cache.get(key)
    if cached is not None:
        return cached
    ea = memo.group(a).initial_expr
    eb = memo.group(b).initial_expr
    if ea.op != eb.op or len(ea.children) != len(eb.children):
        _cache[key] = False
        return False
    result = all(
        structurally_equal(memo, ca, cb, _cache)
        for ca, cb in zip(ea.children, eb.children)
    )
    _cache[key] = result
    return result


@dataclass
class CseReport:
    """What Algorithm 1 found and did — useful for logs and tests."""

    explicit_shared: List[int] = field(default_factory=list)
    merged: List[Tuple[int, int]] = field(default_factory=list)  # (dup, keep)
    spools: List[int] = field(default_factory=list)
    bucket_collisions: int = 0
    false_positives: int = 0

    @property
    def shared_groups(self) -> List[int]:
        return sorted(set(self.explicit_shared) | set(self.spools))


def _reference_counts(memo: Memo) -> Dict[int, int]:
    """Total references to each group from initial expressions."""
    counts: Dict[int, int] = {}
    for gid in memo.reachable_from_root():
        for child in memo.group(gid).initial_expr.children:
            counts[child] = counts.get(child, 0) + 1
    return counts


def _existing_spool(memo: Memo, gid: int):
    """The shared SPOOL group already covering ``gid``, if any."""
    for parent in memo.parents_of(gid):
        group = memo.group(parent)
        if group.dead or not group.exprs:
            continue
        if isinstance(group.initial_expr.op, LogicalSpool) and group.is_shared:
            if group.initial_expr.children == (gid,):
                return parent
    return None


def identify_common_subexpressions(memo: Memo) -> CseReport:
    """Algorithm 1: mark the root groups of all common subexpressions.

    Mutates the memo: duplicate subexpressions are merged down to one
    copy and every common subexpression gets a shared SPOOL group on
    top, which all consumers reference.
    """
    report = CseReport()

    # Line 1: explicitly given common subexpressions — a group referenced
    # two or more times (from distinct parents, or twice by one parent).
    # Reference counts are taken on the pre-spool DAG; inserting a spool
    # moves all of a group's consumers onto the spool, so earlier
    # insertions cannot invalidate later counts.
    counts = _reference_counts(memo)
    for gid in sorted(memo.reachable_from_root()):
        group = memo.group(gid)
        if group.dead or isinstance(group.initial_expr.op, LogicalSpool):
            continue
        if counts.get(gid, 0) > 1:
            spool = memo.insert_spool_above(gid)
            report.explicit_shared.append(spool)
            report.spools.append(spool)

    # Lines 2-3: fingerprint every subexpression into a hash table.
    fingerprints = compute_fingerprints(memo)
    buckets: Dict[int, List[int]] = {}
    for gid, fp in fingerprints.items():
        buckets.setdefault(fp, []).append(gid)

    # Lines 4-11: verify colliding entries into equivalence classes.
    cache: Dict[Tuple[int, int], bool] = {}
    classes: List[List[int]] = []
    for bucket in buckets.values():
        if len(bucket) < 2:
            continue
        report.bucket_collisions += 1
        bucket_classes: List[List[int]] = []
        for gid in sorted(bucket):
            if memo.group(gid).dead:
                continue
            for cls in bucket_classes:
                if structurally_equal(memo, cls[0], gid, cache):
                    cls.append(gid)
                    break
            else:
                bucket_classes.append([gid])
        if len(bucket_classes) > 1:
            report.false_positives += len(bucket_classes) - 1
        classes.extend(cls for cls in bucket_classes if len(cls) > 1)

    # Merge larger (outer) duplicates first: merging two duplicated
    # group-by trees also removes the duplication of everything beneath
    # them, so the inner classes often collapse to a single live node
    # and need no spool of their own.
    sizes = _subtree_sizes(memo)
    classes.sort(key=lambda cls: sizes.get(cls[0], 0), reverse=True)

    for cls in classes:
        live = [gid for gid in cls if not memo.group(gid).dead]
        keep = live[0]
        for dup in live[1:]:
            memo.merge_group_into(dup, keep)
            report.merged.append((dup, keep))
        if _live_reference_count(memo, keep) < 2:
            # All other references vanished with an outer merge; nothing
            # is shared here anymore.
            continue
        spool = _existing_spool(memo, keep)
        if spool is None:
            spool = memo.insert_spool_above(keep)
        else:
            # Merged-in consumers still point at ``keep`` directly;
            # route them through the existing spool.
            memo.redirect_references(keep, spool, skip_group=spool)
        memo.group(spool).is_shared = True
        if spool not in report.spools:
            report.spools.append(spool)

    _drop_degenerate_spools(memo, report)
    return report


def _drop_degenerate_spools(memo: Memo, report: CseReport) -> None:
    """Splice out spools left with fewer than two consumers.

    The explicit-sharing step runs before the fingerprint step; merging
    duplicated consumers can collapse an explicitly shared group's
    consumer set to one, leaving a materialization point that shares
    nothing.  Such spools are removed and their consumers repointed at
    the underlying group.
    """
    for group in list(memo.shared_groups()):
        if not isinstance(group.initial_expr.op, LogicalSpool):
            continue
        if _live_reference_count(memo, group.gid) >= 2:
            continue
        child = group.initial_expr.children[0]
        memo.redirect_references(group.gid, child, skip_group=group.gid)
        group.is_shared = False
        group.dead = True
        if group.gid in report.spools:
            report.spools.remove(group.gid)
        if group.gid in report.explicit_shared:
            report.explicit_shared.remove(group.gid)


def _subtree_sizes(memo: Memo) -> Dict[int, int]:
    """Number of groups in each reachable subexpression."""
    sizes: Dict[int, int] = {}

    def visit(gid: int) -> int:
        cached = sizes.get(gid)
        if cached is not None:
            return cached
        sizes[gid] = 1  # guard against (impossible) cycles
        total = 1 + sum(
            visit(child) for child in memo.group(gid).initial_expr.children
        )
        sizes[gid] = total
        return total

    if memo.root is not None:
        visit(memo.root)
    return sizes


def _live_reference_count(memo: Memo, gid: int) -> int:
    """References to ``gid`` from groups reachable from the root."""
    count = 0
    for parent in memo.reachable_from_root():
        group = memo.group(parent)
        if group.dead:
            continue
        count += sum(1 for c in group.initial_expr.children if c == gid)
    return count
