"""Top-level convenience API.

Everything the quickstart needs in two calls::

    result = optimize_script(text, catalog)                   # CSE-aware
    baseline = optimize_script(text, catalog, exploit_cse=False)

and one more to actually run the chosen plan on the cluster simulator,
either sequentially or on the task-parallel vertex scheduler::

    run = execute_script(text, catalog, workers=8)
    run.outputs["result1.out"].sorted_rows()
    print(run.metrics.summary())
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from .cse.pipeline import (
    CseOptimizationResult,
    optimize_conventional,
    optimize_with_cse,
)
from .exec import (
    Cluster,
    Dataset,
    ExecutionMetrics,
    FaultInjection,
    PlanExecutor,
    RetryPolicy,
    TaskScheduler,
)
from .exec.backend import get_backend
from .frontend import compile_text
from .obs.tracer import NULL_TRACER
from .optimizer.cost import CostParams
from .optimizer.engine import OptimizerConfig
from .plan.expressions import Row
from .plan.logical import LogicalPlan
from .plan.pruning import prune_columns
from .plan.physical import PhysicalPlan
from .scope.catalog import Catalog
from .scope.compiler import compile_script  # noqa: F401 - re-exported
from .sql import compile_sql, parse_sql  # noqa: F401 - re-exported
from .verify import check_plan, verify_enabled

# Deep scripts (LS2 has >1000 operators) recurse through the engine;
# Python's default limit is too tight for DAGs a few hundred levels deep.
_MIN_RECURSION_LIMIT = 20_000


@dataclass
class OptimizationResult:
    """User-facing optimization outcome."""

    #: The chosen physical plan (a DAG; shared spools appear once).
    plan: PhysicalPlan
    #: DAG-aware estimated cost of the chosen plan.
    cost: float
    #: True if the CSE pipeline ran (phase 2 et al.).
    exploited_cse: bool
    #: The full pipeline result for inspection (memo, histories, LCAs,
    #: engine statistics, per-phase plans).
    details: CseOptimizationResult

    def explain(self) -> str:
        """Readable plan rendering with per-node properties and costs."""
        return self.plan.pretty()

    def cse_summary(self) -> str:
        """One-paragraph summary of what the CSE pipeline did.

        Covers the shared groups found (explicit vs fingerprint-merged),
        the LCAs, the phase-2 rounds evaluated, and which phase produced
        the chosen plan.
        """
        details = self.details
        if not self.exploited_cse:
            return "conventional optimization (CSE pipeline not run)"
        report = details.report
        lines = [
            f"shared groups: {len(report.shared_groups)} "
            f"({len(report.explicit_shared)} explicit, "
            f"{len(report.merged)} textual duplicate(s) merged)",
        ]
        for shared_gid, lca_gid in sorted(details.propagation.lca.items()):
            consumers = sorted(
                details.propagation.consumers.get(shared_gid, ())
            )
            lines.append(
                f"  group #{shared_gid}: consumers {consumers}, "
                f"LCA group #{lca_gid}"
            )
        stats = details.engine.stats
        lines.append(
            f"phase-2 rounds: {stats.rounds}"
            + (" (budget exhausted)" if stats.budget_exhausted else "")
        )
        lines.append(
            f"chosen plan: phase {details.chosen_phase} "
            f"(phase 1: {details.phase1_cost:,.0f}, "
            f"phase 2: {details.phase2_cost:,.0f})"
        )
        return "\n".join(lines)


def _ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


def optimize_plan(
    logical: LogicalPlan,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    exploit_cse: bool = True,
    prune: bool = True,
    verify: Optional[bool] = None,
    tracer=NULL_TRACER,
    corrections=None,
) -> OptimizationResult:
    """Optimize an already-compiled logical DAG.

    ``prune`` applies sharing-preserving column pruning first (a
    semantic no-op that narrows scans, projections and aggregations to
    the columns the outputs actually need).

    ``verify`` runs :func:`repro.verify.verify_plan` over the chosen
    plan and raises :class:`repro.verify.PlanVerificationError` on any
    invariant violation.  ``None`` (the default) defers to the global
    default — off normally, on under ``REPRO_VERIFY=1`` or
    :func:`repro.verify.set_default_verify`.

    ``tracer`` (a :class:`repro.obs.Tracer`) records spans for every
    pipeline stage — pruning, CSE detection, both optimization phases,
    verification — on one shared bus; see ``docs/observability.md``.

    ``corrections`` is an optional published
    :class:`repro.stats.CorrectionSet` of learned cardinalities (see
    ``docs/feedback.md``); fragments with an active correction are
    priced at their measured row counts instead of the closed-form
    estimates.
    """
    _ensure_recursion_headroom()
    if prune:
        with tracer.span("prune") as span:
            logical = prune_columns(logical)
            span.set(operators=logical.count_operators())
    if exploit_cse:
        details = optimize_with_cse(logical, catalog, config, tracer=tracer,
                                    corrections=corrections)
    else:
        details = optimize_conventional(logical, catalog, config,
                                        tracer=tracer,
                                        corrections=corrections)
    if verify_enabled(verify):
        mode = "cse" if exploit_cse else "conventional"
        with tracer.span("verify") as span:
            check_plan(details.plan, f"optimized plan ({mode})")
            span.set(mode=mode)
    return OptimizationResult(
        plan=details.plan,
        cost=details.cost,
        exploited_cse=exploit_cse,
        details=details,
    )


def optimize_script(
    text: str,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    exploit_cse: bool = True,
    prune: bool = True,
    verify: Optional[bool] = None,
    tracer=NULL_TRACER,
    corrections=None,
    dialect: str = "auto",
) -> OptimizationResult:
    """Parse, compile and optimize a script.

    ``dialect`` picks the frontend: ``"scope"``, ``"sql"``, or
    ``"auto"`` (the default) to sniff it from the text — see
    :func:`repro.frontend.detect_dialect` and ``docs/sql.md``.
    """
    logical = compile_text(text, catalog, dialect=dialect, tracer=tracer)
    return optimize_plan(logical, catalog, config, exploit_cse, prune,
                         verify, tracer=tracer, corrections=corrections)


@dataclass
class ExecutionResult:
    """Outcome of optimizing *and executing* a script on the simulator."""

    #: The optimization outcome the executed plan came from.
    optimization: OptimizationResult
    #: Output files written by the plan.
    outputs: Dict[str, Dataset]
    #: Measured execution metrics (per-vertex stats when scheduled).
    metrics: ExecutionMetrics
    #: The cluster the plan ran on (inputs still loaded, outputs stored).
    cluster: Cluster
    #: Worker threads/processes used (0 = sequential recursive executor).
    workers: int = 0
    #: Execution backend that ran the operators ("row" or "columnar").
    backend: str = "row"
    #: Scheduler runtime that ran the vertices ("thread" or "process";
    #: meaningful only when ``workers > 0``).
    runtime: str = "thread"

    @property
    def plan(self) -> PhysicalPlan:
        return self.optimization.plan


def execute_script(
    text: str,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    exploit_cse: bool = True,
    prune: bool = True,
    verify: Optional[bool] = None,
    *,
    workers: int = 0,
    machines: Optional[int] = None,
    rows: Optional[int] = None,
    seed: int = 0,
    files: Optional[Dict[str, List[Row]]] = None,
    validate: bool = True,
    failure_rate: float = 0.0,
    failure_seed: int = 0,
    max_retries: int = 3,
    retry_backoff: float = 0.0,
    watchdog: Optional[float] = None,
    backend: str = "row",
    runtime: str = "thread",
    spill_dir: Optional[str] = None,
    keep_spill: bool = False,
    kill_plan=None,
    tracer=NULL_TRACER,
    dialect: str = "auto",
) -> ExecutionResult:
    """Optimize a script and execute the chosen plan on the simulator.

    ``workers=0`` (the default) runs the sequential recursive
    :class:`~repro.exec.PlanExecutor`; ``workers>=1`` compiles the plan
    into a stage graph and runs it on a task-parallel scheduler with
    that many workers.  ``runtime`` picks the scheduler substrate:
    ``"thread"`` (the GIL-bound :class:`~repro.exec.TaskScheduler`) or
    ``"process"`` (:class:`~repro.exec.ProcessScheduler` — forked
    worker processes exchanging columnar wire files through a
    run-scoped spill directory, see ``docs/execution.md``).  All paths
    produce identical outputs for every plan.

    ``spill_dir``/``keep_spill`` control the process runtime's spill
    directory (default: a temp dir, removed on success, preserved on
    failure); ``kill_plan`` injects deterministic worker SIGKILLs
    (:class:`~repro.exec.KillPlan`) to exercise crash-fault recovery.

    ``backend`` selects the operator engine: ``"row"`` (dict-per-row
    interpretation) or ``"columnar"`` (vectorized column batches).  The
    backends are byte-identical on outputs — see ``docs/execution.md``.

    ``machines`` defaults to the optimizer's cost-model cluster size so
    estimated and measured parallelism agree.  ``files`` supplies input
    data directly; otherwise synthetic data matching the catalog
    statistics is generated from ``seed`` (capped at ``rows`` per file).
    ``failure_rate`` turns on seeded per-task fault injection (scheduler
    only), retried up to ``max_retries`` times per task.

    ``tracer`` records the whole run under one root ``run`` span —
    parse, compile, optimization phases, stage-graph cut, per-vertex and
    per-task execution — and publishes the final counters onto the
    tracer's event bus; feed it to :func:`repro.obs.render_span_tree`,
    the export sinks, or :func:`repro.obs.profile_report`.
    """
    from .exec.dist import RUNTIME_NAMES

    from .workloads.datagen import generate_for_catalog

    if runtime not in RUNTIME_NAMES:
        raise ValueError(
            f"unknown runtime {runtime!r} "
            f"(available: {', '.join(RUNTIME_NAMES)})"
        )
    if runtime == "process" and workers < 1:
        raise ValueError("runtime='process' requires workers >= 1")
    if config is None:
        config = OptimizerConfig(
            cost_params=CostParams(machines=machines or 4)
        )
    if machines is None:
        machines = config.cost_params.machines
    with tracer.span("run") as run_span:
        # ``workers`` is a bus event, not a span attribute: the span
        # tree's *structure* stays identical across worker counts.
        run_span.set(machines=machines)
        tracer.emit("exec.config", workers=workers, machines=machines,
                    runtime=runtime)
        result = optimize_script(text, catalog, config, exploit_cse, prune,
                                 verify, tracer=tracer, dialect=dialect)
        if files is None:
            with tracer.span("datagen") as span:
                files = generate_for_catalog(catalog, seed=seed,
                                             rows_override=rows)
                span.set(files=len(files),
                         rows=sum(len(r) for r in files.values()))
        cluster = Cluster(machines=machines)
        for path, file_rows in files.items():
            cluster.load_file(path, file_rows)
        engine = get_backend(backend)
        if workers > 0:
            scheduler_kwargs = {}
            if runtime == "process":
                from .exec.dist import ProcessScheduler

                scheduler_cls: type = ProcessScheduler
                scheduler_kwargs = dict(spill_dir=spill_dir,
                                        keep_spill=keep_spill,
                                        kill_plan=kill_plan)
            else:
                scheduler_cls = TaskScheduler
            executor = scheduler_cls(
                cluster,
                workers=workers,
                validate=validate,
                faults=FaultInjection(rate=failure_rate, seed=failure_seed),
                retry=RetryPolicy(max_retries=max_retries,
                                  backoff=retry_backoff),
                watchdog=watchdog,
                tracer=tracer,
                backend=engine.name,
                **scheduler_kwargs,
            )
        else:
            executor = engine.executor_cls(cluster, validate=validate,
                                           tracer=tracer)
        with tracer.span("execute") as span:
            outputs = executor.execute(result.plan)
            span.set(outputs=len(outputs),
                     rows_output=executor.metrics.rows_output)
        if tracer.enabled:
            executor.metrics.publish(tracer.bus)
    return ExecutionResult(
        optimization=result,
        outputs=outputs,
        metrics=executor.metrics,
        cluster=cluster,
        workers=workers,
        backend=engine.name,
        runtime=runtime,
    )


def execute_batch(
    texts: List[str],
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    *,
    labels: Optional[List[str]] = None,
    workers: int = 4,
    machines: Optional[int] = None,
    rows: Optional[int] = None,
    seed: int = 0,
    files: Optional[Dict[str, List[Row]]] = None,
    validate: bool = True,
    exploit_cse: bool = True,
    prune: bool = True,
    verify: Optional[bool] = None,
    backend: str = "row",
    tracer=NULL_TRACER,
    dialect: str = "auto",
):
    """Optimize and execute a batch of scripts as one shared job.

    Convenience wrapper over a throwaway
    :class:`repro.service.QueryService` — merges the scripts into one
    logical DAG (so cross-script common subexpressions are spooled
    once), executes the merged plan, and cuts per-script outputs back
    out.  Returns a :class:`repro.service.BatchRun`.  Long-lived callers
    that want the plan cache should hold a ``QueryService`` directly.
    """
    from .service import QueryService

    if config is None:
        config = OptimizerConfig(
            cost_params=CostParams(machines=machines or 4)
        )
    service = QueryService(catalog, config, tracer=tracer)
    return service.execute_many(
        texts, labels=labels, workers=workers, machines=machines,
        rows=rows, seed=seed, files=files, validate=validate,
        exploit_cse=exploit_cse, prune=prune, verify=verify,
        backend=backend, dialect=dialect,
    )
