"""LRU plan cache with observability counters.

The cache maps a :class:`CacheKey` — the exact whole-script fingerprint
of :func:`repro.cse.merge.script_fingerprint` plus everything else the
chosen plan depends on (per-file statistics versions, the optimizer
configuration, the CSE/pruning switches) — to a cached
:class:`repro.api.OptimizationResult`.  Keying on the *statistics
versions* of exactly the files a script reads means a catalog update
can never serve a stale plan (the key of a fresh lookup no longer
matches) and invalidation only touches dependent entries.

Every operation publishes a ``service.cache`` event on the owning
service's :class:`repro.obs.EventBus` and bumps a counter in
:class:`CacheStats`; tests hold the counters to exact identities
(``lookups == hits + misses``, ``insertions - evictions -
invalidations == len(cache)``).

The cache itself is not locked — :class:`repro.service.QueryService`
serializes access under its own lock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.bus import EventBus, ObsEvent


@dataclass(frozen=True)
class CacheKey:
    """Everything a cached plan's validity depends on."""

    #: Exact payload-level fingerprint of the canonicalized script DAG.
    fingerprint: str
    #: ``(path, statistics version)`` for every input file the script
    #: reads, sorted by path.  Bumping a file's version on catalog
    #: update makes every dependent key unreachable.
    stats_versions: Tuple[Tuple[str, int], ...]
    #: Canonical token of the optimizer configuration.
    config: str
    exploit_cse: bool = True
    prune: bool = True

    @property
    def short(self) -> str:
        return self.fingerprint[:12]


@dataclass
class CacheEntry:
    """One cached optimization outcome."""

    key: CacheKey
    #: The cached :class:`repro.api.OptimizationResult`.
    result: object
    #: Input files the plan depends on (invalidation index).
    paths: Tuple[str, ...]
    hits: int = 0
    #: The canonicalized logical DAG the plan was optimized from; kept
    #: so the feedback loop can re-optimize an invalidated entry under
    #: corrected statistics without re-parsing anything.
    logical: Optional[object] = None


@dataclass
class CacheStats:
    """Exact, additive counters of one cache's lifetime."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def check_consistent(self, size: int) -> None:
        """Assert the counter identities; raises AssertionError if torn."""
        assert self.lookups == self.hits + self.misses, self
        assert size == self.insertions - self.evictions - \
            self.invalidations, (self, size)


class PlanCache:
    """Bounded LRU cache of optimized plans.

    ``capacity`` bounds the entry count; inserting beyond it evicts the
    least-recently-used entry.  ``bus`` (optional) receives one
    ``service.cache`` event per hit/miss/insert/evict/invalidate.
    """

    def __init__(self, capacity: int = 64,
                 bus: Optional[EventBus] = None):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.bus = bus
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """Look up ``key``, counting a hit or a miss."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._emit("miss", key)
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        self._emit("hit", key)
        return entry

    def put(self, key: CacheKey, result: object,
            paths: Tuple[str, ...],
            logical: Optional[object] = None) -> CacheEntry:
        """Insert (or replace) ``key``, evicting LRU entries if full."""
        entry = CacheEntry(key=key, result=result, paths=paths,
                           logical=logical)
        replacing = key in self._entries
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if not replacing:
            self.stats.insertions += 1
        self._emit("insert", key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._emit("evict", evicted)
        return entry

    def invalidate_path(self, path: str) -> int:
        """Drop every entry whose plan reads ``path``; returns the count.

        Version-bumped keys would already be unreachable; eager removal
        frees their memory and feeds the ``invalidations`` counter.
        """
        victims = [
            key for key, entry in self._entries.items()
            if path in entry.paths
        ]
        for key in victims:
            del self._entries[key]
            self.stats.invalidations += 1
            self._emit("invalidate", key, path=path)
        return len(victims)

    def invalidate_where(self, predicate: Callable[[CacheEntry], bool]
                         ) -> int:
        """Drop every entry matching ``predicate``; returns the count."""
        victims = [
            key for key, entry in self._entries.items() if predicate(entry)
        ]
        for key in victims:
            del self._entries[key]
            self.stats.invalidations += 1
            self._emit("invalidate", key)
        return len(victims)

    def entries(self) -> List[CacheEntry]:
        """Snapshot of live entries, least recently used first."""
        return list(self._entries.values())

    def publish(self, bus: EventBus) -> None:
        """Emit one ``service.cache.counter`` event per stats counter."""
        for name, value in self.stats.as_dict().items():
            bus.publish(ObsEvent.make(
                "service.cache.counter", name=name, value=value
            ))
        bus.publish(ObsEvent.make(
            "service.cache.counter", name="size", value=len(self._entries)
        ))

    def _emit(self, op: str, key: CacheKey, **extra) -> None:
        if self.bus is not None:
            self.bus.publish(ObsEvent.make(
                "service.cache",
                op=op,
                fingerprint=key.short,
                size=len(self._entries),
                **extra,
            ))
