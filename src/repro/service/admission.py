"""Streaming admission control for shared query execution.

:class:`AdmissionController` is the online front-end the ROADMAP's
item 1 asks for: production traffic arrives as a *stream* of scripts,
one at a time, yet the paper's economics only pay off when
independently-submitted jobs execute as one shared DAG.  The
controller buys sharing opportunities with a little latency — scripts
arriving within a time window (or until a pending-work threshold
trips) are collected, grouped by compatibility, merged into one DAG
via :func:`repro.cse.merge.merge_scripts`, executed once on the
scheduler, and each caller gets exactly its own script's outputs back
(:meth:`MergedBatch.split_outputs` routing).  This is the windowed
shared-execution model of "Pay One, Get Hundreds for Free" layered on
the batched MQO machinery that already exists in
:class:`~repro.service.QueryService`.

Semantics, each held by a dedicated test layer in
``tests/test_admission*.py``:

* **Windowing** — the first enqueued script opens a window of
  ``config.window`` seconds (measured on the injected
  :class:`~repro.service.clock.Clock`); when the deadline passes the
  whole pending set is flushed.  A pending-script or pending-input-row
  threshold flushes *early*, synchronously on the submitting thread,
  so thresholds are deterministic without any clock.  An empty window
  is a no-op: no flush, no events.
* **Fairness** — pending scripts queue per tenant and are drained by
  weighted round-robin with a rotation pointer that survives across
  windows, so a tenant flooding the queue cannot push another tenant's
  script beyond one window (``max_batch`` caps one flush; leftovers
  open the next window).
* **Backpressure** — at most ``config.max_pending`` scripts may be
  queued; beyond that ``submit``/``submit_nowait`` raise the typed
  :class:`AdmissionRejected` (callers see an error, not unbounded
  latency).  Draining the queue makes the controller accept again.
* **Single-flight dedup** — identical in-window scripts (same
  canonical fingerprint, same optimize flags) occupy one queue slot
  and execute once; every caller's ticket is routed the shared result.
* **Determinism** — time enters only through the injected clock and
  flushing happens on whichever thread calls :meth:`pump` (tests), the
  submitting thread (threshold trips), or the background drainer
  (:meth:`start`, production).  Under a
  :class:`~repro.service.clock.ManualClock` the whole admission path
  is single-threaded and sleep-free.

Observability: every transition publishes ``service.admission.*``
events (``enqueue``, ``dedup``, ``reject``, ``queue_depth``,
``group``, ``window_flush``, ``resolve``, ``savings``,
``group_failed``) on the service's
:class:`~repro.obs.bus.EventBus`; the
:class:`~repro.obs.collector.MetricsCollector` turns them into the
labeled series documented in ``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cse.merge import referenced_paths, script_fingerprint
from ..obs.bus import ObsEvent
from .clock import Clock, SystemClock
from .core import BatchRun, QueryService


class AdmissionRejected(RuntimeError):
    """Typed backpressure signal: the admission queue is full."""

    def __init__(self, reason: str, *, tenant: str, queue_depth: int,
                 max_pending: int):
        super().__init__(
            f"admission rejected for tenant {tenant!r}: {reason} "
            f"(queue depth {queue_depth}, max_pending {max_pending})"
        )
        self.reason = reason
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.max_pending = max_pending


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs of the admission controller."""

    #: Window length in (clock) seconds; the window opens when the
    #: first script is enqueued into an empty queue.
    window: float = 0.05
    #: Bounded-queue backpressure: scripts queued (after dedup) beyond
    #: this raise :class:`AdmissionRejected`.
    max_pending: int = 256
    #: Scripts drained per flush; leftovers open the next window.
    max_batch: int = 64
    #: Pending-script count that trips an early (synchronous) flush.
    script_threshold: Optional[int] = None
    #: Pending input-row mass (sum of catalog rows of every referenced
    #: file, per script) that trips an early flush — the cheap stand-in
    #: for "enough work has accumulated to be worth optimizing now".
    row_threshold: Optional[int] = None
    #: Weighted round-robin draining: tenants take up to ``weight``
    #: scripts per rotation visit (default 1).
    tenant_weights: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.window < 0:
            raise ValueError("window must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


@dataclass
class AdmissionStats:
    """Controller counters (all monotonically increasing)."""

    submits: int = 0
    accepted: int = 0
    rejected: int = 0
    #: Submissions that joined an identical in-window script's slot.
    deduped: int = 0
    flushes: int = 0
    #: Merged shared jobs executed (one per compatibility group).
    groups: int = 0
    #: Queue entries executed (deduped callers not re-counted).
    executed_scripts: int = 0
    #: Groups whose execution raised; the error went to the callers.
    failed_groups: int = 0
    #: Cumulative cross-script shared vertices over all groups.
    shared_vertices: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submits": self.submits,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "deduped": self.deduped,
            "flushes": self.flushes,
            "groups": self.groups,
            "executed_scripts": self.executed_scripts,
            "failed_groups": self.failed_groups,
            "shared_vertices": self.shared_vertices,
            "max_queue_depth": self.max_queue_depth,
        }


@dataclass
class ScriptResult:
    """What one caller gets back: its own script's outputs plus the
    shared-execution attribution."""

    #: The caller's outputs under the script's *original* paths.
    outputs: Dict[str, object]
    tenant: str
    #: Post-uniquify label of this script inside the merged batch.
    label: str
    #: Canonical whole-script fingerprint (dedup identity).
    fingerprint: str
    window_id: int
    #: What fired the flush: "window", "threshold" or "force".
    trigger: str
    #: Scripts merged into this caller's shared job.
    group_size: int
    #: True when this caller shared another submission's execution.
    deduped: bool
    #: The full shared run (metrics, stage graph, cache info).
    run: BatchRun


class AdmissionTicket:
    """Handle on an enqueued script; resolves at window flush."""

    __slots__ = ("tenant", "fingerprint", "enqueued_at", "_event",
                 "_result", "_error")

    def __init__(self, tenant: str, fingerprint: str,
                 enqueued_at: float = 0.0):
        self.tenant = tenant
        self.fingerprint = fingerprint
        #: Controller-clock time the submit entered the queue; the
        #: resolve event's latency is measured from here, so it is
        #: deterministic under a :class:`~repro.service.clock.ManualClock`.
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._result: Optional[ScriptResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ScriptResult:
        """The caller's :class:`ScriptResult`; raises the group's
        execution error, or :class:`TimeoutError` if no flush resolved
        this ticket within ``timeout`` (real) seconds."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"admission ticket for tenant {self.tenant!r} not "
                "resolved (no flush happened — is the controller "
                "started or pumped?)"
            )
        if self._error is not None:
            raise self._error
        return self._result

    # resolution (controller-internal)

    def _resolve(self, result: ScriptResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Pending:
    """One queue slot: a compiled script plus every ticket riding it."""

    __slots__ = ("text", "logical", "fingerprint", "compat", "tenant",
                 "weight", "exploit_cse", "prune", "tickets")

    def __init__(self, text, logical, fingerprint, compat, tenant, weight,
                 exploit_cse, prune, ticket):
        self.text = text
        self.logical = logical
        self.fingerprint = fingerprint
        self.compat = compat
        self.tenant = tenant
        self.weight = weight
        self.exploit_cse = exploit_cse
        self.prune = prune
        self.tickets: List[AdmissionTicket] = [ticket]

    @property
    def dedup_key(self) -> Tuple[str, str]:
        return (self.compat, self.fingerprint)


class AdmissionController:
    """Windowed admission front-end over a :class:`QueryService`.

    ::

        service = QueryService(catalog, config)
        controller = AdmissionController(service, workers=4,
                                         config=AdmissionConfig(window=0.05))
        controller.start()                  # background drainer (real clock)
        outputs = controller.submit(text, tenant="alice").outputs
        controller.stop()

    Deterministic (test) mode::

        clock = ManualClock()
        controller = AdmissionController(service, clock=clock, ...)
        ticket = controller.submit_nowait(text)
        clock.advance(controller.config.window)
        controller.pump()                   # flush on *this* thread
        result = ticket.result(timeout=0)

    Execution settings (``workers``, ``backend``, ``files``/``rows``/
    ``seed``, fault injection) are controller-level: every flushed
    group runs with them via :meth:`QueryService.execute_many`.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        config: Optional[AdmissionConfig] = None,
        clock: Optional[Clock] = None,
        workers: int = 4,
        machines: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 0,
        files: Optional[Dict[str, list]] = None,
        validate: bool = True,
        backend: str = "row",
        failure_rate: float = 0.0,
        failure_seed: int = 0,
        max_retries: int = 3,
        runtime: str = "thread",
        spill_dir: Optional[str] = None,
    ):
        self.service = service
        self.config = config or AdmissionConfig()
        self.clock = clock or SystemClock()
        self.bus = service.bus
        self.stats = AdmissionStats()
        self.workers = workers
        self.machines = machines
        self.rows = rows
        self.seed = seed
        self.validate = validate
        self.backend = backend
        self.failure_rate = failure_rate
        self.failure_seed = failure_seed
        self.max_retries = max_retries
        self.runtime = runtime
        self.spill_dir = spill_dir
        if files is None:
            from ..workloads.datagen import generate_for_catalog

            files = generate_for_catalog(service.catalog, seed=seed,
                                         rows_override=rows)
        self.files = files

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[_Pending]] = {}
        self._tenant_order: List[str] = []
        self._rr_index = 0
        self._by_dedup: Dict[Tuple[str, str], _Pending] = {}
        self._pending_count = 0
        self._pending_rows = 0
        self._deadline: Optional[float] = None
        self._tripped = False
        self._window_id = 0
        self._drainer: Optional[threading.Thread] = None
        self._stopping = False

    # -- submission --------------------------------------------------------

    def submit_nowait(self, text: str, *, tenant: str = "default",
                      exploit_cse: bool = True,
                      prune: bool = True,
                      dialect: Optional[str] = None) -> AdmissionTicket:
        """Enqueue one script; returns immediately with a ticket.

        Raises :class:`AdmissionRejected` when the bounded queue is
        full.  A script identical to one already pending (same
        canonical DAG, same flags) joins that slot instead of taking a
        new one — single-flight within the window.  ``dialect`` picks
        the frontend per script (default: the service's); dedup keys on
        the compiled DAG, so equivalent SQL and SCOPE submissions
        coalesce into one slot.
        """
        logical = self.service._compile(text, dialect)
        fingerprint = script_fingerprint(logical)
        weight = self._input_rows(logical)
        compat = self._compat_key(exploit_cse, prune)
        ticket = AdmissionTicket(tenant, fingerprint,
                                 enqueued_at=self.clock.now())
        events: List[ObsEvent] = []
        run_pump = False
        rejected: Optional[AdmissionRejected] = None
        with self._cond:
            self.stats.submits += 1
            pending = self._by_dedup.get((compat, fingerprint))
            if pending is not None:
                pending.tickets.append(ticket)
                self.stats.deduped += 1
                events.append(ObsEvent.make(
                    "service.admission.dedup", tenant=tenant,
                    fingerprint=fingerprint[:12],
                    joined_tenant=pending.tenant,
                ))
            elif self._pending_count >= self.config.max_pending:
                self.stats.rejected += 1
                events.append(ObsEvent.make(
                    "service.admission.reject", tenant=tenant,
                    reason="queue full", queue_depth=self._pending_count,
                    max_pending=self.config.max_pending,
                ))
                rejected = AdmissionRejected(
                    "queue full", tenant=tenant,
                    queue_depth=self._pending_count,
                    max_pending=self.config.max_pending,
                )
            else:
                pending = _Pending(text, logical, fingerprint, compat,
                                   tenant, weight, exploit_cse, prune,
                                   ticket)
                queue = self._queues.get(tenant)
                if queue is None:
                    queue = self._queues[tenant] = deque()
                    self._tenant_order.append(tenant)
                queue.append(pending)
                self._by_dedup[pending.dedup_key] = pending
                self._pending_count += 1
                self._pending_rows += weight
                self.stats.accepted += 1
                self.stats.max_queue_depth = max(
                    self.stats.max_queue_depth, self._pending_count
                )
                if self._deadline is None:
                    self._deadline = self.clock.now() + self.config.window
                if self._thresholds_tripped():
                    self._tripped = True
                    run_pump = self._drainer is None
                events.append(ObsEvent.make(
                    "service.admission.enqueue", tenant=tenant,
                    fingerprint=fingerprint[:12],
                    queue_depth=self._pending_count,
                    window=self._window_id,
                ))
            events.append(ObsEvent.make(
                "service.admission.queue_depth",
                depth=self._pending_count,
            ))
            self._cond.notify_all()
        self._publish(events)
        if rejected is not None:
            raise rejected
        if run_pump:
            # Threshold flushes run synchronously on the submitting
            # thread when no drainer owns the loop — deterministic by
            # construction, no clock involved.
            self.pump()
        return ticket

    def submit(self, text: str, *, tenant: str = "default",
               exploit_cse: bool = True, prune: bool = True,
               timeout: Optional[float] = None,
               dialect: Optional[str] = None) -> ScriptResult:
        """Blocking submit: enqueue and wait for the window flush.

        Requires something else to flush — the background drainer
        (:meth:`start`), a threshold trip, or another thread pumping.
        """
        ticket = self.submit_nowait(text, tenant=tenant,
                                    exploit_cse=exploit_cse, prune=prune,
                                    dialect=dialect)
        return ticket.result(timeout=timeout)

    def _publish(self, events: List[ObsEvent]) -> None:
        """Publish queued events outside the controller lock (a
        subscriber may call back into the controller)."""
        for event in events:
            self.bus.publish(event)
        events.clear()

    # -- flushing ----------------------------------------------------------

    def pump(self) -> int:
        """Flush every *due* window (deadline passed or threshold
        tripped) on the calling thread; returns scripts executed.

        The deterministic heartbeat: manual-clock tests advance the
        clock and pump; the background drainer is just a loop of pump
        and clock-aware waiting."""
        return self._flush_loop(force=False)

    def flush(self) -> int:
        """Flush everything pending regardless of deadlines (stream
        end / shutdown); returns scripts executed."""
        return self._flush_loop(force=True)

    def queue_depth(self) -> int:
        with self._lock:
            return self._pending_count

    def stats_snapshot(self) -> Dict[str, int]:
        """Admission counters plus the live queue depth."""
        with self._lock:
            snapshot = self.stats.as_dict()
            snapshot["queue_depth"] = self._pending_count
            snapshot["windows"] = self._window_id
        return snapshot

    def health(self) -> Dict[str, object]:
        """Readiness document for ``/healthz``.

        ``ready`` turns False when the bounded queue is nearly
        saturated (>= 90% of ``max_pending``) — the next submits are
        about to be rejected, so a load balancer should stop routing
        new streams here before the hard backpressure trips.
        """
        with self._lock:
            depth = self._pending_count
            drainer = self._drainer
        saturation = depth / self.config.max_pending
        if saturation < 0.5:
            status = "ok"
        elif saturation < 0.9:
            status = "degraded"
        else:
            status = "saturated"
        return {
            "status": status,
            "ready": saturation < 0.9,
            "checks": {
                "queue_depth": depth,
                "max_pending": self.config.max_pending,
                "queue_saturation": round(saturation, 4),
                "drainer_alive": bool(drainer is not None
                                      and drainer.is_alive()),
            },
        }

    # -- lifecycle (real-clock streaming mode) -----------------------------

    def start(self) -> "AdmissionController":
        """Start the background drain thread (SystemClock setting).

        The drainer waits until the earliest deadline (or an arrival
        notification), pumps, and repeats.  With a :class:`ManualClock`
        prefer the pump-driven mode instead — condition timeouts are
        real seconds, manual time is not."""
        if self._drainer is not None:
            return self
        self._stopping = False
        self._drainer = threading.Thread(
            target=self._drain_loop, daemon=True, name="admission-drainer"
        )
        self._drainer.start()
        return self

    def stop(self, *, flush: bool = True) -> None:
        """Stop the drainer; by default flush whatever is pending."""
        drainer = self._drainer
        if drainer is not None:
            with self._cond:
                self._stopping = True
                self._cond.notify_all()
            drainer.join()
            self._drainer = None
        if flush:
            self.flush()

    def __enter__(self) -> "AdmissionController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _drain_loop(self) -> None:
        while True:
            self.pump()
            with self._cond:
                if self._stopping:
                    return
                now = self.clock.now()
                if self._tripped or (self._deadline is not None
                                     and now >= self._deadline):
                    continue  # due work appeared since the last pump
                if self._deadline is None:
                    self._cond.wait()
                else:
                    self._cond.wait(
                        timeout=max(0.0, self._deadline - now)
                    )

    # -- internals ---------------------------------------------------------

    def _compat_key(self, exploit_cse: bool, prune: bool) -> str:
        """Compatibility fingerprint prefix: scripts merge only when
        they were compiled against the same catalog files and will be
        optimized under the same configuration and flags."""
        catalog_token = ",".join(sorted(
            stats.path for stats in self.service.catalog.files()
        ))
        token = (f"{self.service._config_token}|{catalog_token}"
                 f"|cse={exploit_cse}|prune={prune}")
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:12]

    def _input_rows(self, logical) -> int:
        total = 0
        for path in referenced_paths(logical):
            try:
                total += self.service.catalog.lookup(path).rows
            except KeyError:  # pragma: no cover - unknown file
                pass
        return total

    def _thresholds_tripped(self) -> bool:
        cfg = self.config
        if (cfg.script_threshold is not None
                and self._pending_count >= cfg.script_threshold):
            return True
        if (cfg.row_threshold is not None
                and self._pending_rows >= cfg.row_threshold):
            return True
        return False

    def _tenant_weight(self, tenant: str) -> int:
        return max(1, int(self.config.tenant_weights.get(tenant, 1)))

    def _drain_locked(self) -> List[_Pending]:
        """Weighted round-robin drain of up to ``max_batch`` entries.

        The rotation pointer persists across flushes: each visited
        tenant contributes up to its weight, then the pointer moves on,
        so a flooding tenant cannot push anyone else's script beyond
        one window."""
        take: List[_Pending] = []
        order = self._tenant_order
        n = len(order)
        while len(take) < self.config.max_batch:
            for off in range(n):
                idx = (self._rr_index + off) % n
                tenant = order[idx]
                queue = self._queues[tenant]
                if queue:
                    budget = min(self._tenant_weight(tenant),
                                 self.config.max_batch - len(take))
                    for _ in range(budget):
                        if not queue:
                            break
                        take.append(queue.popleft())
                    self._rr_index = (idx + 1) % n
                    break
            else:
                break
        return take

    def _take_due(self, force: bool):
        with self._cond:
            if self._pending_count == 0:
                return None
            now = self.clock.now()
            if force:
                trigger = "force"
            elif self._tripped:
                trigger = "threshold"
            elif self._deadline is not None and now >= self._deadline:
                trigger = "window"
            else:
                return None
            entries = self._drain_locked()
            if not entries:  # pragma: no cover - defensive
                return None
            for entry in entries:
                self._by_dedup.pop(entry.dedup_key, None)
                self._pending_count -= 1
                self._pending_rows -= entry.weight
            window_id = self._window_id
            self._window_id += 1
            if self._pending_count == 0:
                self._deadline = None
                self._tripped = False
            else:
                # Leftovers (max_batch overflow) open a fresh window.
                self._deadline = now + self.config.window
                self._tripped = self._thresholds_tripped()
            remaining = self._pending_count
        return entries, trigger, window_id, remaining

    def _flush_loop(self, force: bool) -> int:
        executed = 0
        while True:
            due = self._take_due(force)
            if due is None:
                return executed
            executed += self._run_window(*due)

    def _run_window(self, entries: Sequence[_Pending], trigger: str,
                    window_id: int, remaining: int) -> int:
        """Execute one flushed window: group by compatibility, run each
        group as one merged shared job, route results to tickets."""
        groups: Dict[Tuple[str, bool, bool], List[_Pending]] = {}
        for entry in entries:
            key = (entry.compat, entry.exploit_cse, entry.prune)
            groups.setdefault(key, []).append(entry)

        total_shared = 0
        for (compat, exploit_cse, prune), group in groups.items():
            shared_names = self._run_group(
                group, exploit_cse, prune, trigger, window_id
            )
            total_shared += len(shared_names)
            with self._lock:
                self.stats.groups += 1
            self.bus.publish(ObsEvent.make(
                "service.admission.group", window=window_id,
                compat=compat, group_size=len(group),
                tenants=tuple(e.tenant for e in group),
                shared_vertices=len(shared_names),
            ))
        with self._lock:
            self.stats.flushes += 1
            self.stats.executed_scripts += len(entries)
            self.stats.shared_vertices += total_shared
        self.bus.publish(ObsEvent.make(
            "service.admission.window_flush", window=window_id,
            trigger=trigger, scripts=len(entries), groups=len(groups),
            shared_vertices=total_shared, queue_depth=remaining,
        ))
        self.bus.publish(ObsEvent.make(
            "service.admission.queue_depth", depth=remaining,
        ))
        return len(entries)

    def _run_group(self, group: List[_Pending], exploit_cse: bool,
                   prune: bool, trigger: str,
                   window_id: int) -> List[str]:
        # Canonical fingerprint-ordered labels: the merged plan's cache
        # identity then depends only on the distinct DAGs in the group,
        # not on which tenants (or how many windows ago) submitted them
        # — steady-state streams hit the plan cache every window.
        # Tenant attribution travels on the ScriptResult instead.
        group = sorted(group, key=lambda entry: entry.fingerprint)
        labels = [f"q{index}" for index in range(len(group))]
        try:
            run = self.service.execute_many(
                [entry.text for entry in group],
                labels=labels,
                uniquify_labels=True,
                precompiled=[entry.logical for entry in group],
                workers=self.workers,
                machines=self.machines,
                rows=self.rows,
                seed=self.seed,
                files=self.files,
                validate=self.validate,
                exploit_cse=exploit_cse,
                prune=prune,
                backend=self.backend,
                failure_rate=self.failure_rate,
                failure_seed=self.failure_seed,
                max_retries=self.max_retries,
                runtime=self.runtime,
                spill_dir=self.spill_dir,
            )
        except BaseException as exc:  # routed to callers, not raised here
            with self._lock:
                self.stats.failed_groups += 1
            now = self.clock.now()
            events = [ObsEvent.make(
                "service.admission.group_failed", window=window_id,
                scripts=len(group), error=type(exc).__name__,
            )]
            for entry in group:
                for ticket in entry.tickets:
                    events.append(ObsEvent.make(
                        "service.admission.resolve",
                        tenant=ticket.tenant,
                        latency=max(0.0, now - ticket.enqueued_at),
                        ok=False, window=window_id,
                        deduped=ticket is not entry.tickets[0],
                    ))
                    ticket._fail(exc)
            self._publish(events)
            return []
        shared = run.shared_vertices()
        shared_names = [v.name for v in shared]
        now = self.clock.now()
        events: List[ObsEvent] = []
        # Shared-work savings, attributed per tenant through the stage
        # graph's existing ``serves`` labels: a vertex feeding k scripts
        # of this batch ran once instead of k times, so each rider is
        # credited its share of the (k-1) avoided executions' rows.
        savings: Dict[str, List[float]] = {}
        batch_labels = set(run.submit.labels)
        label_tenants = {
            run.submit.labels[index]: entry.tenant
            for index, entry in enumerate(group)
        }
        for vertex in shared:
            labels = {path.split("/", 1)[0] for path in vertex.serves}
            labels &= batch_labels
            k = len(labels)
            stats = run.metrics.vertices.get(vertex.name)
            rows_out = stats.rows_out if stats is not None else 0
            for label in labels:
                tenant = label_tenants.get(label)
                if tenant is None:  # pragma: no cover - defensive
                    continue
                cell = savings.setdefault(tenant, [0, 0.0])
                cell[0] += 1
                cell[1] += rows_out * (k - 1) / k
        for tenant in sorted(savings):
            vertices, rows_saved = savings[tenant]
            events.append(ObsEvent.make(
                "service.admission.savings", tenant=tenant,
                window=window_id, vertices=int(vertices),
                rows_saved=rows_saved,
            ))
        for index, entry in enumerate(group):
            outputs = run.outputs[index]
            label = run.submit.labels[index]
            for t_index, ticket in enumerate(entry.tickets):
                events.append(ObsEvent.make(
                    "service.admission.resolve",
                    tenant=ticket.tenant,
                    latency=max(0.0, now - ticket.enqueued_at),
                    ok=True, window=window_id,
                    deduped=t_index > 0,
                ))
                ticket._resolve(ScriptResult(
                    outputs=outputs,
                    tenant=ticket.tenant,
                    label=label,
                    fingerprint=entry.fingerprint,
                    window_id=window_id,
                    trigger=trigger,
                    group_size=len(group),
                    deduped=t_index > 0,
                    run=run,
                ))
        self._publish(events)
        return shared_names
