"""Injectable clocks for time-driven service components.

The streaming admission controller (:mod:`repro.service.admission`)
flushes windows when a deadline computed from "now" passes.  Binding
"now" to an interface instead of :func:`time.monotonic` is what makes
the admission path *testable*: the deterministic suite drives a
:class:`ManualClock` forward by explicit amounts and pumps the
controller itself, so window semantics are asserted with zero sleeps
and zero timing flakiness, while production uses :class:`SystemClock`
and a background drain thread.

Only one operation is required — ``now()`` returning seconds as a
float.  Monotonicity is the implementation's duty; both bundled clocks
never go backwards.
"""

from __future__ import annotations

import time


class Clock:
    """Minimal time source: ``now()`` in (monotonic) seconds.

    Structural protocol — anything with a ``now() -> float`` works;
    subclassing is optional.
    """

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Real time via :func:`time.monotonic` (the production clock)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A clock that only moves when told to — the deterministic test
    harness for every time-driven admission assertion.

    ::

        clock = ManualClock()
        controller = AdmissionController(service, clock=clock, ...)
        ticket = controller.submit_nowait(text)
        clock.advance(0.2)      # cross the window deadline
        controller.pump()       # flush happens *here*, on this thread
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new ``now()``."""
        if seconds < 0:
            raise ValueError("a ManualClock cannot move backwards")
        self._now += seconds
        return self._now
