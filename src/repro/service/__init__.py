"""Plan-cache query service with cross-script shared execution.

See :mod:`repro.service.core` for the service itself and
:mod:`repro.service.cache` for the LRU plan cache, and
``docs/service.md`` for the cache-keying/invalidation/batching
contract.
"""

from .cache import CacheEntry, CacheKey, CacheStats, PlanCache
from .core import (
    BatchRun,
    BatchSubmitResult,
    QueryService,
    ServiceRun,
    ServiceStats,
    SubmitResult,
)

__all__ = [
    "BatchRun",
    "BatchSubmitResult",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "PlanCache",
    "QueryService",
    "ServiceRun",
    "ServiceStats",
    "SubmitResult",
]
