"""Plan-cache query service with cross-script shared execution.

See :mod:`repro.service.core` for the service itself,
:mod:`repro.service.cache` for the LRU plan cache,
:mod:`repro.service.admission` for the streaming admission controller
(with :mod:`repro.service.clock` supplying the injectable clocks), and
``docs/service.md`` for the cache-keying/invalidation/batching and
streaming-admission contracts.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
    AdmissionTicket,
    ScriptResult,
)
from .cache import CacheEntry, CacheKey, CacheStats, PlanCache
from .clock import Clock, ManualClock, SystemClock
from .core import (
    BatchRun,
    BatchSubmitResult,
    QueryService,
    ServiceRun,
    ServiceStats,
    SubmitResult,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "AdmissionTicket",
    "BatchRun",
    "BatchSubmitResult",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "Clock",
    "ManualClock",
    "PlanCache",
    "QueryService",
    "ScriptResult",
    "ServiceRun",
    "ServiceStats",
    "SubmitResult",
    "SystemClock",
]
