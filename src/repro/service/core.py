"""A long-lived, plan-caching query service with shared batch execution.

:class:`QueryService` is the serving layer the ROADMAP's north star
asks for: scripts arrive continuously (single or batched), plans are
served from an LRU cache keyed on the exact script fingerprint plus
everything the plan depends on, and batched submissions are merged into
one logical DAG so the paper's CSE machinery shares work *across*
scripts — the "pay one, get hundreds for free" setting of shared cloud
query execution.

Guarantees (each held by a dedicated test layer):

* **Determinism** — a cache hit returns the *same* plan a cold
  optimization produces, byte-identical under the canonical explain
  (differential tests over the whole corpus and the paper scripts).
* **Freshness** — a statistics update bumps the per-file version that
  is part of every dependent cache key and eagerly invalidates
  dependent entries; a lookup after a catalog mutation can never return
  a stale plan (property-tested).
* **Single-flight** — concurrent submissions of the same script
  coalesce onto one optimization; the fingerprint is optimized at most
  once per (key, statistics version) no matter how many threads race
  (stress-tested).
* **Shared batches** — ``submit_many`` merges scripts under one
  Sequence root via :func:`repro.cse.merge.merge_scripts`; a
  subexpression shared across scripts is spooled and executed exactly
  once (the stage graph's vertex attribution reports which scripts each
  vertex serves).
* **Verified hits** — when :func:`repro.verify.default_verify` is on
  (the whole test suite), plans returned from the cache are re-checked
  against the static invariant catalog just like freshly optimized
  ones.

Concurrency contract: ``submit``/``submit_many`` are thread-safe.
``update_statistics`` is safe against concurrent *lookups* but should
not race an in-flight optimization of a dependent script — the old
plan stays correct for the data it was optimized against, but whether
it lands in the cache under the old or new version is timing-dependent
(the key always records the version the optimization *started* from,
so staleness is still impossible).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import OptimizationResult, optimize_plan
from ..cse.merge import (
    BatchMergeError,
    MergedBatch,
    canonicalize,
    merge_scripts,
    referenced_paths,
    script_fingerprint,
)
from ..exec import (
    Cluster,
    Dataset,
    ExecutionMetrics,
    PlanExecutor,
    TaskScheduler,
)
from ..exec.stage_graph import StageGraph, Vertex
from ..obs.bus import EventBus, ObsEvent
from ..obs.tracer import NULL_TRACER
from ..optimizer.engine import OptimizerConfig
from ..plan.logical import LogicalPlan
from ..frontend import compile_text
from ..scope.catalog import Catalog
from ..stats.feedback import (
    FeedbackConfig,
    FeedbackController,
    FeedbackDecision,
)
from ..stats.recost import recost_plan
from ..verify import maybe_check_plan
from .cache import CacheEntry, CacheKey, PlanCache


@dataclass
class ServiceStats:
    """Service-level counters (cache counters live on the cache)."""

    submits: int = 0
    batch_submits: int = 0
    #: Times the optimizer actually ran (== cache misses that built).
    optimizations: int = 0
    #: Submissions that waited on another thread's in-flight build.
    coalesced: int = 0
    catalog_updates: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submits": self.submits,
            "batch_submits": self.batch_submits,
            "optimizations": self.optimizations,
            "coalesced": self.coalesced,
            "catalog_updates": self.catalog_updates,
        }


@dataclass
class SubmitResult:
    """Outcome of one ``submit`` call."""

    #: The (possibly cached) optimization outcome.
    result: OptimizationResult
    #: Whole-script fingerprint (cache identity).
    fingerprint: str
    #: The full cache key the plan was served under.
    key: CacheKey
    #: True when the plan came from the cache (including coalesced waits).
    cache_hit: bool
    #: True when this call waited on another thread's optimization.
    coalesced: bool = False
    #: Wall-clock seconds spent in ``submit`` (not deterministic).
    latency: float = 0.0

    @property
    def plan(self):
        return self.result.plan


@dataclass
class BatchSubmitResult(SubmitResult):
    """Outcome of ``submit_many``: one merged plan plus output routing."""

    batch: Optional[MergedBatch] = None

    @property
    def labels(self) -> Tuple[str, ...]:
        return self.batch.labels


@dataclass
class ServiceRun:
    """Optimize-and-execute outcome for a single script."""

    submit: SubmitResult
    outputs: Dict[str, Dataset]
    metrics: ExecutionMetrics
    stage_graph: Optional[StageGraph]
    workers: int
    #: Execution backend that ran the operators ("row" or "columnar").
    backend: str = "row"
    #: Scheduler substrate ("thread" or "process").
    runtime: str = "thread"


@dataclass
class BatchRun:
    """Shared execution outcome of a batch, cut back per script."""

    submit: BatchSubmitResult
    #: Per-script outputs under the scripts' *original* paths.
    outputs: List[Dict[str, Dataset]]
    #: The merged run's raw outputs (label-prefixed paths).
    merged_outputs: Dict[str, Dataset]
    metrics: ExecutionMetrics
    stage_graph: Optional[StageGraph]
    workers: int
    #: Execution backend that ran the operators ("row" or "columnar").
    backend: str = "row"
    #: Scheduler substrate ("thread" or "process").
    runtime: str = "thread"

    def shared_vertices(self) -> List[Vertex]:
        """Vertices whose output feeds more than one script of the batch.

        Requires a scheduled run (``workers >= 1``); the sequential
        executor builds no stage graph.
        """
        if self.stage_graph is None:
            return []
        shared = []
        for vertex in self.stage_graph.vertices:
            labels = {path.split("/", 1)[0] for path in vertex.serves}
            if len(labels & set(self.submit.labels)) > 1:
                shared.append(vertex)
        return shared


class _Flight:
    """In-flight optimization other threads can wait on."""

    __slots__ = ("event", "entry", "error")

    def __init__(self):
        self.event = threading.Event()
        self.entry: Optional[CacheEntry] = None
        self.error: Optional[BaseException] = None


class QueryService:
    """Long-lived query service: plan cache + shared batch execution.

    ::

        service = QueryService(catalog, config, cache_capacity=128)
        first = service.submit(text)          # cache miss: optimizes
        again = service.submit(text)          # cache hit: no optimizer
        run = service.execute_many([s1, s2], workers=4)  # shared batch
        service.update_statistics("test.log", rows=2 * 10**9)  # invalidates

    All submissions share one :class:`~repro.obs.EventBus` (``bus``)
    carrying ``service.submit``, ``service.cache`` and
    ``service.catalog`` events.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: Optional[OptimizerConfig] = None,
        *,
        cache_capacity: int = 64,
        bus: Optional[EventBus] = None,
        tracer=NULL_TRACER,
        feedback=None,
        metrics=None,
        dialect: str = "auto",
    ):
        self.catalog = catalog
        self.config = config or OptimizerConfig()
        #: Default frontend dialect for submissions ("auto" sniffs each
        #: script; see :func:`repro.frontend.detect_dialect`).
        self.dialect = dialect
        self.bus = bus if bus is not None else EventBus()
        self.tracer = tracer
        self.stats = ServiceStats()
        self.cache = PlanCache(cache_capacity, bus=self.bus)
        self.catalog_version = 0
        self._config_token = repr(self.config)
        self._file_versions: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, _Flight] = {}
        #: Learned-statistics controller (``docs/feedback.md``), enabled
        #: by passing a :class:`repro.stats.feedback.FeedbackConfig` (or
        #: ``True`` for defaults).
        self.feedback: Optional[FeedbackController] = None
        if feedback:
            cfg = (feedback if isinstance(feedback, FeedbackConfig)
                   else FeedbackConfig())
            self.feedback = FeedbackController(self, cfg)
        #: Live telemetry (``docs/observability.md`` "Live metrics"):
        #: pass ``True`` for a default
        #: :class:`~repro.obs.collector.MetricsCollector`, or a
        #: pre-built collector (e.g. with an injected clock or custom
        #: SLO config).  When enabled, the collector subscribes to
        #: this service's bus and every execution additionally
        #: publishes its ``exec.*`` counter events there; when
        #: disabled, neither the bus contents nor any output changes.
        self.metrics_collector = None
        if metrics:
            from ..obs.collector import MetricsCollector

            collector = (metrics if isinstance(metrics, MetricsCollector)
                         else MetricsCollector())
            self.metrics_collector = collector.subscribe(self.bus)

    # -- submission -------------------------------------------------------

    def submit(self, text: str, *, exploit_cse: bool = True,
               prune: bool = True,
               verify: Optional[bool] = None,
               dialect: Optional[str] = None) -> SubmitResult:
        """Normalize, fingerprint and optimize-or-serve one script."""
        started = time.perf_counter()
        logical = self._compile(text, dialect)
        result = self._submit_logical(logical, exploit_cse, prune, verify)
        result.latency = time.perf_counter() - started
        return result

    def submit_many(
        self,
        texts: Sequence[str],
        *,
        labels: Optional[Sequence[str]] = None,
        exploit_cse: bool = True,
        prune: bool = True,
        verify: Optional[bool] = None,
        uniquify_labels: bool = False,
        precompiled: Optional[Sequence[LogicalPlan]] = None,
        dialect: Optional[str] = None,
    ) -> BatchSubmitResult:
        """Merge a batch into one logical DAG and optimize-or-serve it.

        The merged plan is cached like any single script — resubmitting
        the same batch (same scripts, any relation names, same order of
        labels) is a cache hit.  ``precompiled`` supplies the already
        compiled-and-canonicalized logical plans (the admission
        controller compiles at enqueue time to fingerprint and weigh
        scripts; recompiling at flush time would double the parse cost
        of every admitted script); ``uniquify_labels`` forwards to
        :func:`repro.cse.merge.merge_scripts` so duplicate caller
        labels auto-suffix instead of rejecting the batch.
        """
        started = time.perf_counter()
        plans = (list(precompiled) if precompiled is not None
                 else [self._compile(t, dialect) for t in texts])
        if len(plans) != len(texts):
            raise BatchMergeError(
                f"{len(texts)} scripts but {len(plans)} precompiled plans"
            )
        merged = merge_scripts(plans, labels, uniquify=uniquify_labels)
        with self._lock:
            self.stats.batch_submits += 1
        base = self._submit_logical(merged.plan, exploit_cse, prune, verify)
        result = BatchSubmitResult(
            result=base.result,
            fingerprint=base.fingerprint,
            key=base.key,
            cache_hit=base.cache_hit,
            coalesced=base.coalesced,
            batch=merged,
        )
        result.latency = time.perf_counter() - started
        return result

    # -- execution --------------------------------------------------------

    def execute(
        self,
        text: str,
        *,
        workers: int = 0,
        machines: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 0,
        files: Optional[Dict[str, list]] = None,
        validate: bool = True,
        exploit_cse: bool = True,
        prune: bool = True,
        verify: Optional[bool] = None,
        backend: str = "row",
        failure_rate: float = 0.0,
        failure_seed: int = 0,
        max_retries: int = 3,
        runtime: str = "thread",
        spill_dir: Optional[str] = None,
        dialect: Optional[str] = None,
    ) -> ServiceRun:
        """Optimize-or-serve one script and run it on the simulator.

        ``backend`` selects the execution engine ("row" or "columnar");
        plans, cache keys and outputs are backend-independent.
        ``failure_rate`` enables seeded per-task fault injection on the
        scheduler path (``workers >= 1``), retried up to
        ``max_retries`` times per task.  ``runtime="process"`` runs the
        scheduled plan on forked worker processes with exchanges
        spilled to ``spill_dir`` (results and counters are identical to
        the thread runtime).
        """
        sub = self.submit(text, exploit_cse=exploit_cse, prune=prune,
                          verify=verify, dialect=dialect)
        outputs, metrics, graph = self._run_plan(
            sub.result.plan, workers, machines, rows, seed, files, validate,
            backend, failure_rate, failure_seed, max_retries,
            runtime, spill_dir,
        )
        run = ServiceRun(submit=sub, outputs=outputs, metrics=metrics,
                         stage_graph=graph, workers=workers,
                         backend=backend, runtime=runtime)
        self._feedback_after(run)
        return run

    def execute_many(
        self,
        texts: Sequence[str],
        *,
        labels: Optional[Sequence[str]] = None,
        workers: int = 4,
        machines: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 0,
        files: Optional[Dict[str, list]] = None,
        validate: bool = True,
        exploit_cse: bool = True,
        prune: bool = True,
        verify: Optional[bool] = None,
        backend: str = "row",
        uniquify_labels: bool = False,
        precompiled: Optional[Sequence[LogicalPlan]] = None,
        failure_rate: float = 0.0,
        failure_seed: int = 0,
        max_retries: int = 3,
        runtime: str = "thread",
        spill_dir: Optional[str] = None,
        dialect: Optional[str] = None,
    ) -> BatchRun:
        """Optimize-or-serve a batch and execute it as one shared job.

        Cross-script common subexpressions are spooled and executed
        once; each script's outputs are cut back out under its original
        paths.  ``backend`` selects the execution engine ("row" or
        "columnar").  ``uniquify_labels``/``precompiled`` forward to
        :meth:`submit_many`; ``failure_rate`` enables seeded per-task
        fault injection on the scheduler path.
        """
        sub = self.submit_many(texts, labels=labels,
                               exploit_cse=exploit_cse, prune=prune,
                               verify=verify,
                               uniquify_labels=uniquify_labels,
                               precompiled=precompiled, dialect=dialect)
        merged_outputs, metrics, graph = self._run_plan(
            sub.result.plan, workers, machines, rows, seed, files, validate,
            backend, failure_rate, failure_seed, max_retries,
            runtime, spill_dir,
        )
        per_script = sub.batch.split_outputs(merged_outputs)
        run = BatchRun(
            submit=sub,
            outputs=per_script,
            merged_outputs=merged_outputs,
            metrics=metrics,
            stage_graph=graph,
            workers=workers,
            backend=backend,
            runtime=runtime,
        )
        self._feedback_after(run)
        return run

    # -- catalog maintenance ----------------------------------------------

    def update_statistics(
        self,
        path: str,
        *,
        rows: Optional[int] = None,
        ndv: Optional[Dict[str, int]] = None,
        histograms: Optional[dict] = None,
    ) -> int:
        """Refresh a file's statistics; invalidates dependent plans.

        Bumps the file's statistics version (part of every dependent
        cache key) and the global catalog version, re-registers the
        file (its ``file_id`` — and hence expression fingerprints — is
        preserved by the catalog), and eagerly drops every cache entry
        whose plan reads ``path``.  Returns the number of invalidated
        entries.
        """
        stats = self.catalog.lookup(path)
        self.catalog.register_file(
            path,
            [(c.name, c.ctype) for c in stats.schema],
            rows=stats.rows if rows is None else rows,
            ndv=stats.ndv if ndv is None else ndv,
            histograms=stats.histograms if histograms is None else histograms,
        )
        with self._lock:
            self._file_versions[path] = self._file_versions.get(path, 0) + 1
            version = self._file_versions[path]
            self.catalog_version += 1
            self.stats.catalog_updates += 1
            removed = self.cache.invalidate_path(path)
        self.bus.publish(ObsEvent.make(
            "service.catalog", op="update", path=path, version=version,
            invalidated=removed,
        ))
        return removed

    # -- learned-statistics feedback ---------------------------------------

    def apply_corrections(self, store, fragments) -> List["FeedbackDecision"]:
        """Publish corrections and re-optimize the plans they invalidate.

        Called by the :class:`~repro.stats.feedback.FeedbackController`
        after Gate A has admitted ``fragments``.  Atomically (under the
        service lock): publishes the corrections, bumps the statistics
        version of every affected input file — the *same* freshness
        mechanism ``update_statistics`` uses, so cached keys referencing
        the old estimates become unreachable — and eagerly invalidates
        dependent cache entries.  Each invalidated entry that retained
        its logical DAG is then re-optimized under the corrected
        statistics and passed through Gate B (see
        :meth:`_reoptimize_entry`); refusals re-insert the incumbent
        plan under the fresh key, so refusing costs no future optimizer
        runs.  Returns the Gate-B decision cards.
        """
        with self._lock:
            active = store.publish(fragments)
            paths = store.affected_paths(fragments)
            victims = [
                entry for entry in self.cache.entries()
                if set(entry.paths) & set(paths)
            ]
            for path in paths:
                self._file_versions[path] = \
                    self._file_versions.get(path, 0) + 1
                self.catalog_version += 1
            invalidated = 0
            for path in paths:
                invalidated += self.cache.invalidate_path(path)
        self.bus.publish(ObsEvent.make(
            "stats.feedback.publish",
            version=active.version,
            corrections=len(active),
            invalidated=invalidated,
            paths=",".join(paths),
        ))
        cards: List[FeedbackDecision] = []
        for entry in victims:
            if entry.logical is None:
                continue
            cards.append(self._reoptimize_entry(entry, active))
        return cards

    def _reoptimize_entry(self, entry: CacheEntry,
                          corrections) -> "FeedbackDecision":
        """Gate B: re-optimize one invalidated entry under corrections.

        The candidate plan is optimized (and costed) under the corrected
        statistics; the incumbent plan is *re-priced* under the same
        corrections (:func:`repro.stats.recost.recost_plan`) so the
        comparison is apples to apples.  The candidate is adopted only
        if it beats the incumbent by the configured margin; either way
        the winner is cached under the fresh key.
        """
        key = entry.key
        logical = entry.logical
        old_result = entry.result
        new_key, paths, _ = self._key_for(logical, key.exploit_cse,
                                          key.prune)
        new_result = optimize_plan(
            logical, self.catalog, self.config,
            exploit_cse=key.exploit_cse, prune=key.prune,
            tracer=self.tracer, corrections=corrections,
        )
        _, old_cost = recost_plan(
            old_result.plan, old_result.details.plan_memo,
            self.catalog, self.config, corrections=corrections,
        )
        margin = (self.feedback.config.adoption_margin
                  if self.feedback is not None else 0.0)
        adopt = new_result.cost < old_cost * (1.0 - margin)
        chosen = new_result if adopt else old_result
        with self._lock:
            self.cache.put(new_key, chosen, paths, logical=logical)
        if self.feedback is not None:
            self.feedback.note_reoptimization(adopt)
        if adopt:
            detection = (
                f"candidate corrected cost {new_result.cost:,.0f} < "
                f"incumbent corrected cost {old_cost:,.0f}"
            )
        else:
            detection = (
                f"candidate corrected cost {new_result.cost:,.0f} does "
                f"not beat incumbent corrected cost {old_cost:,.0f}"
                + (f" by margin {margin:.0%}" if margin else "")
            )
        return FeedbackDecision(
            action="adopt" if adopt else "keep",
            pathology="cached plan optimized under misestimated statistics",
            detection=detection,
            subject=key.short,
            old_cost=old_cost,
            new_cost=new_result.cost,
        )

    def _feedback_after(self, run) -> None:
        if self.feedback is not None and self.feedback.config.auto:
            self.feedback.observe_run(run)
            self.feedback.step()

    # -- introspection -----------------------------------------------------

    def stats_snapshot(self) -> Dict[str, int]:
        """Service + cache counters in one flat dict (tests hold the
        identities ``submits == hits + optimizations + coalesced`` and
        ``cache.lookups == cache.hits + cache.misses``)."""
        with self._lock:
            snapshot = {
                **self.stats.as_dict(),
                **{f"cache_{k}": v
                   for k, v in self.cache.stats.as_dict().items()},
                "cache_size": len(self.cache),
                "catalog_version": self.catalog_version,
            }
        if self.feedback is not None:
            snapshot.update(self.feedback.stats_snapshot())
        return snapshot

    def publish_stats(self, bus: Optional[EventBus] = None) -> None:
        """Emit one ``service.counter`` event per counter."""
        bus = bus if bus is not None else self.bus
        for name, value in self.stats_snapshot().items():
            bus.publish(ObsEvent.make(
                "service.counter", name=name, value=value
            ))

    def metrics_snapshot(self) -> Dict[str, object]:
        """The live-telemetry snapshot (registry + SLO table).

        Requires the service to have been built with ``metrics=``; the
        same document backs ``repro serve --metrics-out``, the
        ``/metrics.json`` endpoint and ``repro top``.
        """
        if self.metrics_collector is None:
            raise RuntimeError(
                "metrics are not enabled on this service; construct it "
                "with QueryService(..., metrics=True)"
            )
        return self.metrics_collector.snapshot()

    def health(self) -> Dict[str, object]:
        """Service-level health document (the ``/healthz`` body when no
        admission controller fronts this service)."""
        with self._lock:
            cache_size = len(self.cache)
            inflight = len(self._inflight)
            version = self.catalog_version
        return {
            "status": "ok",
            "ready": True,
            "checks": {
                "cache_size": cache_size,
                "inflight_optimizations": inflight,
                "catalog_version": version,
            },
        }

    # -- internals ---------------------------------------------------------

    def _compile(self, text: str,
                 dialect: Optional[str] = None) -> LogicalPlan:
        """Compile ``text`` under ``dialect`` (default: the service's).

        The cache key downstream fingerprints the *compiled plan*, not
        the text, so a SQL query and its SCOPE twin that lower to the
        same DAG share one cache entry — dialect is deliberately not
        part of plan identity.
        """
        return canonicalize(compile_text(text, self.catalog,
                                         dialect=dialect or self.dialect,
                                         tracer=self.tracer))

    def _key_for(self, logical: LogicalPlan, exploit_cse: bool,
                 prune: bool):
        """Cache key + dependency paths + the corrections snapshot.

        The corrections are read under the same lock as the statistics
        versions (and :meth:`apply_corrections` mutates both under that
        lock), so a key can never pair old versions with new corrections
        or vice versa — the key always names exactly the statistics the
        optimization will run under.
        """
        paths = referenced_paths(logical)
        with self._lock:
            versions = tuple(
                (path, self._file_versions.get(path, 0)) for path in paths
            )
            corrections = (self.feedback.store.active()
                           if self.feedback is not None else None)
        key = CacheKey(
            fingerprint=script_fingerprint(logical),
            stats_versions=versions,
            config=self._config_token,
            exploit_cse=exploit_cse,
            prune=prune,
        )
        return key, paths, corrections

    def _submit_logical(self, logical: LogicalPlan, exploit_cse: bool,
                        prune: bool,
                        verify: Optional[bool]) -> SubmitResult:
        key, paths, corrections = self._key_for(logical, exploit_cse, prune)
        build = False
        with self._lock:
            self.stats.submits += 1
            flight = self._inflight.get(key)
            if flight is None:
                entry = self.cache.get(key)
                if entry is not None:
                    result: OptimizationResult = entry.result
                    # Satellite fix: the cache path verifies exactly like
                    # a fresh optimization does (global default or the
                    # per-call override) — a corrupted or miskeyed entry
                    # surfaces as a named invariant violation, not as a
                    # silent wrong answer downstream.
                    maybe_check_plan(
                        result.plan,
                        f"plan-cache hit ({key.short})",
                        verify,
                    )
                    self._emit_submit("hit", key, result)
                    return SubmitResult(result, key.fingerprint, key,
                                        cache_hit=True)
                flight = _Flight()
                self._inflight[key] = flight
                build = True

        if not build:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.stats.coalesced += 1
            result = flight.entry.result
            self._emit_submit("coalesced", key, result)
            return SubmitResult(result, key.fingerprint, key,
                                cache_hit=True, coalesced=True)

        try:
            with self._lock:
                self.stats.optimizations += 1
            result = optimize_plan(
                logical, self.catalog, self.config,
                exploit_cse=exploit_cse, prune=prune, verify=verify,
                tracer=self.tracer, corrections=corrections,
            )
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            entry = self.cache.put(key, result, paths, logical=logical)
            self._inflight.pop(key, None)
        flight.entry = entry
        flight.event.set()
        self._emit_submit("optimize", key, result)
        return SubmitResult(result, key.fingerprint, key, cache_hit=False)

    def _emit_submit(self, op: str, key: CacheKey,
                     result: OptimizationResult) -> None:
        self.bus.publish(ObsEvent.make(
            "service.submit", op=op, fingerprint=key.short,
            cost=result.cost, exploited_cse=result.exploited_cse,
        ))

    def _run_plan(self, plan, workers: int, machines: Optional[int],
                  rows: Optional[int], seed: int,
                  files: Optional[Dict[str, list]], validate: bool,
                  backend: str = "row", failure_rate: float = 0.0,
                  failure_seed: int = 0, max_retries: int = 3,
                  runtime: str = "thread",
                  spill_dir: Optional[str] = None):
        from ..exec.backend import get_backend
        from ..exec.dist import RUNTIME_NAMES, ProcessScheduler
        from ..exec.scheduler import FaultInjection, RetryPolicy
        from ..workloads.datagen import generate_for_catalog

        if runtime not in RUNTIME_NAMES:
            raise ValueError(
                f"unknown runtime {runtime!r} "
                f"(available: {', '.join(RUNTIME_NAMES)})"
            )
        if runtime == "process" and workers < 1:
            raise ValueError("runtime='process' requires workers >= 1")
        if machines is None:
            machines = self.config.cost_params.machines
        if files is None:
            files = generate_for_catalog(self.catalog, seed=seed,
                                         rows_override=rows)
        cluster = Cluster(machines=machines)
        for path, file_rows in files.items():
            cluster.load_file(path, file_rows)
        engine = get_backend(backend)
        if workers > 0:
            scheduler_cls: type = TaskScheduler
            scheduler_kwargs = {}
            if runtime == "process":
                scheduler_cls = ProcessScheduler
                scheduler_kwargs = dict(spill_dir=spill_dir)
            executor = scheduler_cls(cluster, workers=workers,
                                     validate=validate, tracer=self.tracer,
                                     backend=engine.name,
                                     faults=FaultInjection(
                                         rate=failure_rate,
                                         seed=failure_seed),
                                     retry=RetryPolicy(
                                         max_retries=max_retries),
                                     **scheduler_kwargs)
        else:
            executor = engine.executor_cls(cluster, validate=validate,
                                           tracer=self.tracer)
        outputs = executor.execute(plan)
        graph = executor.stage_graph if workers > 0 else None
        if self.metrics_collector is not None:
            # Feed the run's deterministic counters to the live
            # telemetry layer through the same bus spine everything
            # else publishes on.
            executor.metrics.publish(self.bus)
        return outputs, executor.metrics, graph
