"""Command-line interface.

::

    python -m repro explain  script.scope --catalog catalog.json
    python -m repro compare  script.scope --catalog catalog.json
    python -m repro run      script.scope --catalog catalog.json --rows 5000
    python -m repro profile  script.scope --catalog catalog.json
    python -m repro verify   script.scope --catalog catalog.json
    python -m repro figure7

``explain`` optimizes a script and prints the chosen plan (optionally as
Graphviz or JSON); ``compare`` shows conventional vs CSE side by side;
``run`` additionally executes the plan on the cluster simulator over
synthetic data matching the catalog statistics and cross-checks the
result against the naive reference evaluator (``--profile`` appends the
span tree and cardinality-feedback reports, ``--trace-out`` /
``--chrome-trace`` export the trace); ``profile`` is the dedicated
end-to-end profiler — span tree, per-vertex q-error table, top-k
makespan hotspots; ``verify`` statically checks every optimized plan
against the invariant catalog of ``repro.verify`` and prints a
structured violation report; ``figure7`` regenerates the paper's
headline table.

Live telemetry (``docs/observability.md``): ``serve`` grows
``--metrics-out FILE`` (write the final metrics snapshot as JSON) and
``--metrics-port N`` (serve ``/metrics``, ``/metrics.json`` and
``/healthz`` over HTTP for the workload's duration), and ``top``
renders the terminal dashboard — tenant SLO table, shared-work
savings, latency histograms — from either surface.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .api import execute_script, optimize_script
from .cse.merge import BatchMergeError
from .exec import BACKEND_NAMES, RUNTIME_NAMES, ExecutionError, KillPlan
from .frontend import (
    FrontendError,
    compile_text,
    detect_dialect,
    dialect_names,
    format_diagnostic,
)
from .naive import NaiveEvaluator
from .obs import (
    NULL_TRACER,
    Tracer,
    cardinality_table,
    hotspot_table,
    render_span_tree,
    write_chrome_trace,
    write_jsonl,
)
from .optimizer.cost import CostParams
from .optimizer.engine import OptimizerConfig
from .optimizer.explain import (
    compare_plans,
    explain_dict,
    explain_text,
    render_stages,
    stage_graph,
    to_dot,
)
from .scope.statistics import catalog_from_json
from .verify import verify_plan
from .workloads.datagen import generate_for_catalog


def _load_catalog(path: str):
    with open(path) as handle:
        return catalog_from_json(handle.read())


def _load_script(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _script_dialect(args, path: str, text: str) -> str:
    """Resolve the frontend dialect for one script.

    ``--dialect auto`` (the default) detects per script: the file
    extension wins (``.sql`` vs ``.scope``/``.script``), falling back
    to a content sniff — which is all there is for stdin (``-``).
    """
    name = getattr(args, "dialect", "auto")
    if name == "auto":
        return detect_dialect(text, path=None if path == "-" else path)
    return name


def _config(args) -> OptimizerConfig:
    return OptimizerConfig(
        cost_params=CostParams(machines=args.machines),
        budget_seconds=args.budget,
        max_rounds=args.max_rounds,
    )


def cmd_explain(args) -> int:
    catalog = _load_catalog(args.catalog)
    text = _load_script(args.script)
    config = _config(args)
    if getattr(args, "trace", False):
        import dataclasses

        config = dataclasses.replace(config, trace=True)
    result = optimize_script(
        text, catalog, config, exploit_cse=not args.no_cse,
        dialect=_script_dialect(args, args.script, text),
    )
    fmt = args.format or ("json" if args.json else
                          "dot" if args.dot else "text")
    if fmt == "json":
        print(json.dumps(explain_dict(result.plan), indent=2))
    elif fmt == "dot":
        print(to_dot(result.plan))
    else:
        print(explain_text(result.plan, total_cost=result.cost))
        print()
        print(render_stages(stage_graph(result.plan)))
        details = result.details
        if result.exploited_cse:
            print(f"\nshared groups: {len(details.report.shared_groups)}  "
                  f"phase-2 rounds: {details.engine.stats.rounds}  "
                  f"chosen phase: {details.chosen_phase}")
        if getattr(args, "trace", False) and details.engine.trace is not None:
            from .optimizer.trace import render_trace

            print()
            print(render_trace(details.engine.trace))
    return 0


def cmd_compare(args) -> int:
    catalog = _load_catalog(args.catalog)
    text = _load_script(args.script)
    dialect = _script_dialect(args, args.script, text)
    conventional = optimize_script(text, catalog, _config(args),
                                   exploit_cse=False, dialect=dialect)
    extended = optimize_script(text, catalog, _config(args),
                               exploit_cse=True, dialect=dialect)
    print("=== conventional plan ===")
    print(conventional.plan.pretty())
    print("=== plan exploiting common subexpressions ===")
    print(extended.plan.pretty())
    print(compare_plans(conventional.plan, extended.plan,
                        conventional.cost, extended.cost))
    return 0


def _wants_tracing(args) -> bool:
    return bool(
        getattr(args, "profile", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "chrome_trace", None)
    )


def _emit_observability(args, tracer, metrics) -> None:
    """Shared tail of ``run --profile`` and ``profile``."""
    if getattr(args, "profile", True):
        print("--- span tree ---")
        print(render_span_tree(tracer))
        print("--- cardinality feedback (worst q-error first) ---")
        print(cardinality_table(metrics))
        top = getattr(args, "top", 5)
        print(f"--- top {top} hotspots by simulated makespan share ---")
        print(hotspot_table(metrics, top))
    if getattr(args, "trace_out", None):
        write_jsonl(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} (JSON lines)")
    if getattr(args, "chrome_trace", None):
        write_chrome_trace(tracer, args.chrome_trace)
        print(f"trace written to {args.chrome_trace} "
              "(chrome://tracing format)")


def _explain_exec(backend: str, metrics) -> None:
    """``--explain-exec``: which engine ran, and how many batches."""
    print("--- execution backend ---")
    print(f"backend: {backend}")
    for name in sorted(metrics.batches_processed):
        print(f"batches processed [{name}]: "
              f"{metrics.batches_processed[name]}")
    if metrics.vertices:
        print("per-vertex batches:")
        for vname in sorted(metrics.vertices):
            print(f"  {vname}: {metrics.vertices[vname].batches}")


def _run_feedback(args, catalog, text, files, dialect: str = "auto") -> int:
    """``repro run --feedback``: drive the learned-statistics loop.

    Executes the script ``--feedback-runs`` times through one
    :class:`~repro.service.QueryService` with the cardinality-feedback
    controller enabled (``docs/feedback.md``): measured fragment
    cardinalities from each run feed corrections, and later rounds
    serve the risk-gated re-optimized plan from the cache.  Prints one
    line per round plus the decision cards; ``--feedback-log`` writes
    them as JSON lines.
    """
    from .service import QueryService
    from .stats.feedback import FeedbackConfig

    service = QueryService(
        catalog, _config(args),
        feedback=FeedbackConfig(
            qerror_threshold=args.feedback_qerror,
            min_observations=args.feedback_min_obs,
        ),
    )
    expected = NaiveEvaluator(files).run(
        compile_text(text, catalog, dialect=dialect)
    )
    status = 0
    processed: list = []
    for round_no in range(args.feedback_runs):
        run = service.execute(
            text, workers=args.workers, machines=args.machines,
            files=files, exploit_cse=not args.no_cse,
            backend=args.backend, dialect=dialect,
        )
        processed.append(run.metrics.rows_processed())
        outcome = "hit " if run.submit.cache_hit else "miss"
        print(f"[{round_no}] {outcome} {run.submit.key.short}  "
              f"cost={run.submit.result.cost:,.0f}  "
              f"rows_processed={processed[-1]:,}")
        mismatches = [
            path for path, want in expected.items()
            if run.outputs[path].sorted_rows() != want
        ]
        if mismatches:
            print(f"RESULT MISMATCH vs naive evaluation: {mismatches}",
                  file=sys.stderr)
            status = 1
    controller = service.feedback
    print("--- feedback decisions ---")
    if not controller.decisions:
        print("  (none)")
    for card in controller.decisions:
        print(f"  {card.action}: {card.detection}")
    print("--- feedback counters ---")
    for name, value in sorted(controller.stats_snapshot().items()):
        print(f"  {name}: {value}")
    if len(processed) > 1 and processed[0] > 0:
        change = processed[-1] / processed[0] - 1.0
        print(f"rows processed: {processed[0]:,} -> {processed[-1]:,} "
              f"({change:+.1%})")
    if args.feedback_log:
        count = controller.dump_decisions(args.feedback_log)
        print(f"{count} decision card(s) written to {args.feedback_log}")
    if status == 0:
        print("verified: results identical to the naive reference "
              "evaluation in every round")
    return status


def _feedback_arg(args):
    """The ``feedback=`` value for ``QueryService`` from serve flags.

    ``--feedback-store PATH`` implies the feedback loop and persists
    the learned store across restarts (``docs/feedback.md``).
    """
    if getattr(args, "feedback_store", None):
        from .stats.feedback import FeedbackConfig

        return FeedbackConfig(persist_path=args.feedback_store)
    return args.feedback


def _telemetry_wanted(args) -> bool:
    return bool(getattr(args, "metrics_out", None)
                or getattr(args, "metrics_port", None) is not None)


def _start_metrics_server(args, collector, health):
    """Start the ``/metrics`` + ``/healthz`` endpoint when
    ``--metrics-port`` was given; returns the server or None."""
    if getattr(args, "metrics_port", None) is None:
        return None
    from .obs import MetricsServer

    server = MetricsServer(collector, health=health,
                           port=args.metrics_port).start()
    print(f"metrics: /metrics /metrics.json /healthz on {server.url}")
    return server


def _write_metrics_out(args, collector) -> None:
    """``--metrics-out``: persist the snapshot ``repro top`` renders."""
    if not getattr(args, "metrics_out", None):
        return
    with open(args.metrics_out, "w") as handle:
        json.dump(collector.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"metrics snapshot written to {args.metrics_out}")


def _kill_plan(args) -> Optional[KillPlan]:
    """Build the crash-fault plan from ``--kill-*`` flags (run only)."""
    if not (args.kill_vertex or args.kill_times):
        return None
    if args.runtime != "process":
        raise SystemExit(
            "error: --kill-vertex/--kill-times require --runtime process"
        )
    return KillPlan(
        vertex=args.kill_vertex,
        nth_task=args.kill_nth_task,
        times=args.kill_times or 1,
    )


def cmd_run(args) -> int:
    catalog = _load_catalog(args.catalog)
    text = _load_script(args.script)
    files = generate_for_catalog(catalog, seed=args.seed,
                                 rows_override=args.rows)
    dialect = _script_dialect(args, args.script, text)
    if args.feedback:
        return _run_feedback(args, catalog, text, files, dialect)
    tracer = Tracer() if _wants_tracing(args) else NULL_TRACER
    run = execute_script(
        text,
        catalog,
        _config(args),
        exploit_cse=not args.no_cse,
        workers=args.workers,
        machines=args.machines,
        files=files,
        failure_rate=args.inject_failures,
        failure_seed=args.failure_seed
        if args.failure_seed is not None else args.seed,
        max_retries=args.max_retries,
        backend=args.backend,
        runtime=args.runtime,
        spill_dir=args.spill_dir,
        keep_spill=args.keep_spill,
        kill_plan=_kill_plan(args),
        tracer=tracer,
        dialect=dialect,
    )
    outputs = run.outputs

    expected = NaiveEvaluator(files).run(
        compile_text(text, catalog, dialect=dialect)
    )
    mismatches = [
        path
        for path, want in expected.items()
        if outputs[path].sorted_rows() != want
    ]

    print(f"estimated cost: {run.optimization.cost:,.0f}")
    if args.workers:
        mode = (
            f"{args.runtime} scheduler, {args.workers} workers"
            + (f", fault rate {args.inject_failures}"
               if args.inject_failures else "")
        )
    else:
        mode = "sequential executor"
    print(f"executed on: {mode}")
    print("--- execution metrics ---")
    print(run.metrics.summary())
    vertex_table = run.metrics.vertex_table()
    if vertex_table:
        print("--- vertices ---")
        print(vertex_table)
    if args.explain_exec:
        _explain_exec(run.backend, run.metrics)
    print("--- outputs ---")
    for path in sorted(outputs):
        data = outputs[path]
        print(f"  {path}: {data.total_rows()} rows "
              f"({len(data.schema)} columns)")
        if args.show_rows:
            for row in data.sorted_rows()[: args.show_rows]:
                print(f"    {row}")
    if _wants_tracing(args):
        _emit_observability(args, tracer, run.metrics)
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            json.dump(run.metrics.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"execution metrics written to {args.stats_json}")
    if mismatches:
        print(f"RESULT MISMATCH vs naive evaluation: {mismatches}",
              file=sys.stderr)
        return 1
    print("verified: results identical to the naive reference evaluation")
    return 0


def cmd_profile(args) -> int:
    catalog = _load_catalog(args.catalog)
    text = _load_script(args.script)
    files = generate_for_catalog(catalog, seed=args.seed,
                                 rows_override=args.rows)
    tracer = Tracer()
    run = execute_script(
        text,
        catalog,
        _config(args),
        exploit_cse=not args.no_cse,
        workers=args.workers,
        machines=args.machines,
        files=files,
        tracer=tracer,
        dialect=_script_dialect(args, args.script, text),
    )
    print(f"estimated cost: {run.optimization.cost:,.0f}")
    print(f"executed on: scheduler, {args.workers} workers"
          if args.workers else "executed on: sequential executor")
    print("--- span tree ---")
    print(render_span_tree(tracer))
    print("--- cardinality feedback (worst q-error first) ---")
    print(cardinality_table(run.metrics))
    print(f"--- top {args.top} hotspots by simulated makespan share ---")
    print(hotspot_table(run.metrics, args.top))
    if args.trace_out:
        write_jsonl(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} (JSON lines)")
    if args.chrome_out:
        write_chrome_trace(tracer, args.chrome_out)
        print(f"trace written to {args.chrome_out} "
              "(chrome://tracing format)")
    return 0


def cmd_verify(args) -> int:
    catalog = _load_catalog(args.catalog)
    text = _load_script(args.script)
    dialect = _script_dialect(args, args.script, text)
    config = _config(args)
    modes = [("cse", True)]
    if args.no_cse:
        modes = [("conventional", False)]
    elif not args.cse_only:
        modes.append(("conventional", False))

    reports = {}
    failed = False
    for label, exploit_cse in modes:
        result = optimize_script(text, catalog, config,
                                 exploit_cse=exploit_cse, verify=False,
                                 dialect=dialect)
        plans = {"chosen": result.plan}
        if args.phases and exploit_cse:
            details = result.details
            if details.phase1_plan is not None:
                plans["phase1"] = details.phase1_plan
            if details.phase2_plan is not None:
                plans["phase2"] = details.phase2_plan
        for plan_label, plan in plans.items():
            report = verify_plan(plan)
            reports[f"{label}/{plan_label}"] = report
            failed = failed or not report.ok

    if args.json:
        print(json.dumps(
            {name: report.to_dict() for name, report in reports.items()},
            indent=2,
        ))
    else:
        for name, report in reports.items():
            print(f"--- {name} ---")
            print(report.render())
    return 1 if failed else 0


def _serve_stream(args, catalog, texts) -> int:
    """``repro serve --stream``: concurrent clients feed one admission
    controller; windows merge into shared batches on the scheduler.

    Spawns ``--tenants`` client threads, each submitting the whole
    workload ``--repeat`` times through a started
    :class:`~repro.service.AdmissionController` with blocking
    ``submit``; prints the per-tenant tally and the admission counters
    (optionally as JSON via ``--stats-json``).
    """
    import threading

    from .service import AdmissionConfig, AdmissionController, QueryService

    service = QueryService(catalog, _config(args),
                           cache_capacity=args.cache_capacity,
                           feedback=_feedback_arg(args),
                           metrics=_telemetry_wanted(args))
    controller = AdmissionController(
        service,
        config=AdmissionConfig(
            window=args.window_ms / 1000.0,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
        ),
        workers=args.workers,
        machines=args.machines,
        rows=args.rows,
        seed=args.seed,
        backend=args.backend,
        failure_rate=args.inject_failures,
        failure_seed=(args.seed if args.failure_seed is None
                      else args.failure_seed),
        max_retries=args.max_retries,
        runtime=args.runtime,
        spill_dir=args.spill_dir,
    )
    done, errors = [], []
    lock = threading.Lock()

    def client(tenant: str) -> None:
        for _ in range(args.repeat):
            for path, text in texts:
                try:
                    result = controller.submit(
                        text, tenant=tenant,
                        exploit_cse=not args.no_cse, timeout=300,
                        dialect=_script_dialect(args, path, text),
                    )
                except Exception as exc:  # noqa: BLE001 - tallied below
                    with lock:
                        errors.append((tenant, path, exc))
                else:
                    with lock:
                        done.append((tenant, path, result))

    threads = [
        threading.Thread(target=client, args=(f"t{i}",))
        for i in range(args.tenants)
    ]
    server = _start_metrics_server(args, service.metrics_collector,
                                   controller.health)
    try:
        with controller:
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        deduped = sum(1 for _, _, r in done if r.deduped)
        print(f"{args.tenants} tenant(s) x {args.repeat} pass(es) x "
              f"{len(texts)} script(s): {len(done)} served "
              f"({deduped} deduped in-window), {len(errors)} failed")
        for tenant, path, exc in errors:
            print(f"  FAILED {tenant} {path}: {exc}")
        snapshot = controller.stats_snapshot()
        print("--- admission counters ---")
        for name, value in sorted(snapshot.items()):
            print(f"  {name}: {value}")
        if service.feedback is not None:
            print("--- feedback counters ---")
            for name, value in sorted(
                    service.feedback.stats_snapshot().items()):
                print(f"  {name}: {value}")
            if args.feedback_log:
                count = service.feedback.dump_decisions(args.feedback_log)
                print(f"{count} decision card(s) written to "
                      f"{args.feedback_log}")
        if args.stats_json:
            with open(args.stats_json, "w") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
            print(f"counters written to {args.stats_json}")
        if service.metrics_collector is not None:
            _write_metrics_out(args, service.metrics_collector)
        if server is not None and args.metrics_linger > 0:
            # Keep /metrics and /healthz scrapeable after the workload
            # drains (CI curls the endpoint of a backgrounded run).
            import time

            time.sleep(args.metrics_linger)
    finally:
        if server is not None:
            server.stop()
    return 1 if errors else 0


def cmd_serve(args) -> int:
    """Feed scripts through one long-lived :class:`QueryService`.

    Submits every script ``--repeat`` times against one service, so
    repeated submissions exercise the plan cache; prints one line per
    submission (hit/miss/coalesced, cost, fingerprint) and the final
    service + cache counters, optionally as JSON (``--stats-json``).
    With ``--stream``, runs the windowed admission front-end instead:
    concurrent tenants submit into shared execution windows.
    """
    from .service import QueryService

    catalog = _load_catalog(args.catalog)
    texts = [(path, _load_script(path)) for path in args.scripts]
    if args.stream:
        return _serve_stream(args, catalog, texts)
    service = QueryService(catalog, _config(args),
                           cache_capacity=args.cache_capacity,
                           feedback=_feedback_arg(args),
                           metrics=_telemetry_wanted(args))
    server = _start_metrics_server(args, service.metrics_collector,
                                   service.health)
    try:
        for round_no in range(args.repeat):
            for path, text in texts:
                sub = service.submit(
                    text, exploit_cse=not args.no_cse,
                    dialect=_script_dialect(args, path, text),
                )
                outcome = "hit " if sub.cache_hit else "miss"
                print(f"[{round_no}] {outcome} {sub.key.short}  "
                      f"cost={sub.result.cost:,.0f}  {path}")
        snapshot = service.stats_snapshot()
        print("--- service counters ---")
        for name, value in snapshot.items():
            print(f"  {name}: {value}")
        if service.feedback is not None and args.feedback_log:
            count = service.feedback.dump_decisions(args.feedback_log)
            print(f"{count} decision card(s) written to "
                  f"{args.feedback_log}")
        if args.stats_json:
            with open(args.stats_json, "w") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
            print(f"counters written to {args.stats_json}")
        if service.metrics_collector is not None:
            _write_metrics_out(args, service.metrics_collector)
        if server is not None and args.metrics_linger > 0:
            import time

            time.sleep(args.metrics_linger)
    finally:
        if server is not None:
            server.stop()
    return 0


def cmd_batch(args) -> int:
    """Optimize and execute a batch of scripts as one shared job."""
    from .service import QueryService

    catalog = _load_catalog(args.catalog)
    service = QueryService(catalog, _config(args))
    texts = [_load_script(path) for path in args.scripts]
    labels = args.labels.split(",") if args.labels else None
    # Mixed-dialect batches are fine: compile each script under its own
    # detected dialect and hand the merged plans to the service.
    plans = [
        service._compile(text, _script_dialect(args, path, text))
        for path, text in zip(args.scripts, texts)
    ]
    run = service.execute_many(
        texts, labels=labels, workers=args.workers,
        machines=args.machines, rows=args.rows, seed=args.seed,
        exploit_cse=not args.no_cse, backend=args.backend,
        runtime=args.runtime, spill_dir=args.spill_dir,
        precompiled=plans,
    )
    print(f"merged {len(texts)} script(s) "
          f"({', '.join(run.submit.labels)}); "
          f"estimated cost: {run.submit.result.cost:,.0f}")
    shared = run.shared_vertices()
    if shared:
        print("--- cross-script shared vertices (executed once) ---")
        for vertex in shared:
            stats = run.metrics.vertices.get(vertex.name)
            launches = stats.launches if stats else 0
            print(f"  {vertex.name}: launches={launches} "
                  f"serves={', '.join(vertex.serves)}")
    elif args.workers:
        print("no cross-script shared vertices")
    print("--- execution metrics ---")
    print(run.metrics.summary())
    if args.explain_exec:
        _explain_exec(run.backend, run.metrics)
    print("--- per-script outputs ---")
    for label, outputs in zip(run.submit.labels, run.outputs):
        for path in sorted(outputs):
            data = outputs[path]
            print(f"  {label}/{path}: {data.total_rows()} rows")
            if args.show_rows:
                for row in data.sorted_rows()[: args.show_rows]:
                    print(f"    {row}")
    return 0


def cmd_top(args) -> int:
    """``repro top`` — render the service health dashboard from a
    metrics snapshot file (``repro serve --metrics-out``) or a live
    ``--metrics-port`` endpoint (``http://host:port``)."""
    from .obs.top import load_source, render_dashboard

    try:
        doc = load_source(args.source)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_dashboard(doc), end="")
    return 0


def cmd_figure7(args) -> int:
    from .workloads.figure7 import format_table, run_all

    scripts = args.scripts.split(",") if args.scripts else None
    print(format_table(run_all(scripts, include_local_best=args.local_best)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-based common-subexpression optimizer (ICDE 2012 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, needs_script=True):
        if needs_script:
            p.add_argument("script",
                           help="path to a SCOPE or SQL script "
                           "('-' reads stdin)")
            p.add_argument("--catalog", required=True,
                           help="path to a catalog JSON file")
        p.add_argument("--dialect", choices=("auto",) + dialect_names(),
                       default="auto",
                       help="script frontend; 'auto' detects from the "
                       "file extension (.sql vs .scope/.script) or the "
                       "text (default auto)")
        p.add_argument("--machines", type=int, default=25,
                       help="simulated cluster size (default 25)")
        p.add_argument("--budget", type=float, default=None,
                       help="optimization time budget in seconds")
        p.add_argument("--max-rounds", type=int, default=None,
                       help="cap on phase-2 enforcement rounds")
        p.add_argument("--no-cse", action="store_true",
                       help="conventional optimization only")

    p_explain = sub.add_parser("explain", help="optimize and show the plan")
    common(p_explain)
    p_explain.add_argument("--format", choices=("text", "json", "dot"),
                           default=None,
                           help="output format (default text; overrides "
                           "--json/--dot)")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the plan as JSON")
    p_explain.add_argument("--dot", action="store_true",
                           help="emit the plan as Graphviz dot")
    p_explain.add_argument("--trace", action="store_true",
                           help="also print the optimizer's search trace")
    p_explain.set_defaults(func=cmd_explain)

    p_compare = sub.add_parser(
        "compare", help="conventional vs CSE plans side by side"
    )
    common(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_run = sub.add_parser(
        "run", help="optimize, execute on the simulator, verify vs oracle"
    )
    common(p_run)
    p_run.add_argument("--rows", type=int, default=5_000,
                       help="rows generated per input file (default 5000)")
    p_run.add_argument("--seed", type=int, default=0, help="data seed")
    p_run.add_argument("--show-rows", type=int, default=0,
                       help="print up to N rows per output")
    p_run.add_argument("--workers", type=int, default=0,
                       help="run on the task-parallel vertex scheduler "
                       "with N worker threads (0 = sequential executor)")
    p_run.add_argument("--inject-failures", type=float, default=0.0,
                       metavar="RATE",
                       help="seeded per-task failure probability "
                       "(scheduler only, e.g. 0.1)")
    p_run.add_argument("--max-retries", type=int, default=3,
                       help="retry budget per task before the job fails "
                       "(default 3)")
    p_run.add_argument("--failure-seed", type=int, default=None,
                       help="fault-injection seed (defaults to --seed)")
    p_run.add_argument("--runtime", choices=RUNTIME_NAMES,
                       default="thread",
                       help="scheduler substrate: thread (in-process "
                       "workers) or process (forked workers, wire-format "
                       "exchanges spilled to disk); results and counters "
                       "are identical (default thread)")
    p_run.add_argument("--spill-dir", default=None, metavar="DIR",
                       help="root directory for the process runtime's "
                       "run-scoped spill files (default: a temp dir)")
    p_run.add_argument("--keep-spill", action="store_true",
                       help="preserve the spill directory and manifest "
                       "after a successful run (process runtime)")
    p_run.add_argument("--kill-vertex", default=None, metavar="NAME",
                       help="crash-fault injection: SIGKILL the worker "
                       "dispatched this vertex's task (process runtime; "
                       "e.g. 'V01:HashAgg')")
    p_run.add_argument("--kill-nth-task", type=int, default=0,
                       metavar="N",
                       help="skip N matching dispatches before killing "
                       "(default 0: the first)")
    p_run.add_argument("--kill-times", type=int, default=0, metavar="N",
                       help="kill N consecutive matching dispatches; "
                       "without --kill-vertex this kills on any vertex "
                       "(default 1 when --kill-vertex is given)")
    p_run.add_argument("--profile", action="store_true",
                       help="append the span tree and the "
                       "cardinality-feedback / hotspot reports")
    p_run.add_argument("--trace-out", default=None, metavar="FILE",
                       help="export the trace as JSON lines")
    p_run.add_argument("--chrome-trace", default=None, metavar="FILE",
                       help="export the trace in chrome://tracing format")
    p_run.add_argument("--top", type=int, default=5,
                       help="hotspots to list with --profile (default 5)")
    p_run.add_argument("--backend", choices=BACKEND_NAMES, default="row",
                       help="execution engine: row (dict-per-row) or "
                       "columnar (vectorized column batches); outputs are "
                       "byte-identical (default row)")
    p_run.add_argument("--feedback", action="store_true",
                       help="run the script repeatedly through a query "
                       "service with the cardinality-feedback loop "
                       "enabled (docs/feedback.md); later rounds serve "
                       "the risk-gated re-optimized plan")
    p_run.add_argument("--feedback-runs", type=int, default=2,
                       help="rounds to execute with --feedback "
                       "(default 2: observe, then serve the corrected "
                       "plan)")
    p_run.add_argument("--feedback-qerror", type=float, default=2.0,
                       help="q-error threshold that triggers a "
                       "correction (--feedback; default 2.0)")
    p_run.add_argument("--feedback-min-obs", type=int, default=1,
                       help="observations required before a correction "
                       "may publish (--feedback; default 1)")
    p_run.add_argument("--feedback-log", default=None, metavar="FILE",
                       help="write the feedback decision cards as JSON "
                       "lines (--feedback)")
    p_run.add_argument("--explain-exec", action="store_true",
                       help="print the chosen backend and per-vertex "
                       "batch counts")
    p_run.add_argument("--stats-json", default=None, metavar="FILE",
                       help="write the execution metrics (flat counter/"
                       "operator labels plus per-vertex stats) as JSON")
    p_run.set_defaults(func=cmd_run)

    p_profile = sub.add_parser(
        "profile", help="end-to-end traced run: span tree, q-error table, "
        "makespan hotspots"
    )
    common(p_profile)
    p_profile.add_argument("--rows", type=int, default=5_000,
                           help="rows generated per input file "
                           "(default 5000)")
    p_profile.add_argument("--seed", type=int, default=0, help="data seed")
    p_profile.add_argument("--workers", type=int, default=4,
                           help="scheduler worker threads (default 4; "
                           "0 = sequential executor, no vertex stats)")
    p_profile.add_argument("--top", type=int, default=5,
                           help="hotspots to list (default 5)")
    p_profile.add_argument("--trace-out", default=None, metavar="FILE",
                           help="export the trace as JSON lines")
    p_profile.add_argument("--chrome-out", default=None, metavar="FILE",
                           help="export the trace in chrome://tracing "
                           "format")
    p_profile.set_defaults(func=cmd_profile)

    p_verify = sub.add_parser(
        "verify", help="statically check optimized plans against the "
        "invariant catalog"
    )
    common(p_verify)
    p_verify.add_argument("--json", action="store_true",
                          help="emit the violation report as JSON")
    p_verify.add_argument("--phases", action="store_true",
                          help="also verify the per-phase plans, not just "
                          "the chosen one")
    p_verify.add_argument("--cse-only", action="store_true",
                          help="skip the conventional baseline plan")
    p_verify.set_defaults(func=cmd_verify)

    p_serve = sub.add_parser(
        "serve", help="submit scripts through a plan-caching query service"
    )
    p_serve.add_argument("scripts", nargs="+",
                         help="paths to SCOPE or SQL scripts "
                         "(the workload)")
    p_serve.add_argument("--catalog", required=True,
                         help="path to a catalog JSON file")
    common(p_serve, needs_script=False)
    p_serve.add_argument("--repeat", type=int, default=2,
                         help="passes over the workload (default 2: the "
                         "second pass hits the plan cache)")
    p_serve.add_argument("--cache-capacity", type=int, default=64,
                         help="plan-cache entries (default 64)")
    p_serve.add_argument("--stats-json", default=None, metavar="FILE",
                         help="write the final service/cache counters as "
                         "JSON")
    p_serve.add_argument("--stream", action="store_true",
                         help="streaming admission mode: concurrent tenants "
                         "submit into time windows that execute as one "
                         "shared batch")
    p_serve.add_argument("--window-ms", type=float, default=50.0,
                         help="admission window length in milliseconds "
                         "(--stream; default 50)")
    p_serve.add_argument("--max-pending", type=int, default=256,
                         help="bounded-queue backpressure limit "
                         "(--stream; default 256)")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="scripts drained per window flush "
                         "(--stream; default 64)")
    p_serve.add_argument("--tenants", type=int, default=4,
                         help="concurrent client threads "
                         "(--stream; default 4)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="scheduler worker threads per window "
                         "(--stream; default 4)")
    p_serve.add_argument("--rows", type=int, default=2_000,
                         help="rows generated per input file "
                         "(--stream; default 2000)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="data seed (--stream)")
    p_serve.add_argument("--backend", choices=BACKEND_NAMES, default="row",
                         help="execution engine for window runs "
                         "(--stream; default row)")
    p_serve.add_argument("--inject-failures", type=float, default=0.0,
                         metavar="RATE",
                         help="seeded per-task failure probability for "
                         "window runs (--stream, e.g. 0.05)")
    p_serve.add_argument("--failure-seed", type=int, default=None,
                         help="fault-injection seed (--stream; defaults "
                         "to --seed)")
    p_serve.add_argument("--max-retries", type=int, default=3,
                         help="retry budget per task (--stream; default 3)")
    p_serve.add_argument("--runtime", choices=RUNTIME_NAMES,
                         default="thread",
                         help="scheduler substrate for window runs "
                         "(--stream; default thread)")
    p_serve.add_argument("--spill-dir", default=None, metavar="DIR",
                         help="spill root for --runtime process "
                         "(--stream; default: a temp dir)")
    p_serve.add_argument("--feedback", action="store_true",
                         help="enable the cardinality-feedback loop on "
                         "the service (docs/feedback.md); corrections "
                         "from executed windows re-optimize cached "
                         "plans (observations require execution, i.e. "
                         "--stream)")
    p_serve.add_argument("--feedback-store", default=None, metavar="FILE",
                         help="enable the feedback loop and persist the "
                         "learned store to FILE (loaded on start when it "
                         "exists, saved after every capture/gate cycle), "
                         "so corrections survive restarts")
    p_serve.add_argument("--feedback-log", default=None, metavar="FILE",
                         help="write the feedback decision cards as "
                         "JSON lines")
    p_serve.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="enable live telemetry and write the final "
                         "metrics snapshot as JSON (render it with "
                         "'repro top FILE')")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="N",
                         help="enable live telemetry and serve /metrics, "
                         "/metrics.json and /healthz on 127.0.0.1:N "
                         "(0 = ephemeral port)")
    p_serve.add_argument("--metrics-linger", type=float, default=0.0,
                         metavar="SEC",
                         help="keep the metrics endpoint up SEC seconds "
                         "after the workload finishes (--metrics-port)")
    p_serve.set_defaults(func=cmd_serve)

    p_batch = sub.add_parser(
        "batch", help="merge scripts into one shared job and execute it"
    )
    p_batch.add_argument("scripts", nargs="+",
                         help="paths to SCOPE or SQL scripts to batch")
    p_batch.add_argument("--catalog", required=True,
                         help="path to a catalog JSON file")
    common(p_batch, needs_script=False)
    p_batch.add_argument("--labels", default=None,
                         help="comma-separated per-script labels "
                         "(default q0,q1,...)")
    p_batch.add_argument("--workers", type=int, default=4,
                         help="scheduler worker threads (default 4; "
                         "0 = sequential executor)")
    p_batch.add_argument("--rows", type=int, default=5_000,
                         help="rows generated per input file (default 5000)")
    p_batch.add_argument("--seed", type=int, default=0, help="data seed")
    p_batch.add_argument("--show-rows", type=int, default=0,
                         help="print up to N rows per output")
    p_batch.add_argument("--backend", choices=BACKEND_NAMES, default="row",
                         help="execution engine: row or columnar "
                         "(default row)")
    p_batch.add_argument("--runtime", choices=RUNTIME_NAMES,
                         default="thread",
                         help="scheduler substrate (default thread)")
    p_batch.add_argument("--spill-dir", default=None, metavar="DIR",
                         help="spill root for --runtime process "
                         "(default: a temp dir)")
    p_batch.add_argument("--explain-exec", action="store_true",
                         help="print the chosen backend and per-vertex "
                         "batch counts")
    p_batch.set_defaults(func=cmd_batch)

    p_top = sub.add_parser(
        "top", help="terminal dashboard over a metrics snapshot "
        "(tenant SLO table, savings, latency histograms)"
    )
    p_top.add_argument("source",
                       help="metrics snapshot JSON file (from 'repro "
                       "serve --metrics-out') or the http://host:port "
                       "of a live --metrics-port endpoint")
    p_top.set_defaults(func=cmd_top)

    p_fig = sub.add_parser("figure7", help="regenerate the Figure 7 table")
    p_fig.add_argument("--scripts", default=None,
                       help="comma-separated subset, e.g. S1,S2,LS1")
    p_fig.add_argument("--local-best", action="store_true",
                       help="also measure the related-work sharing baseline")
    p_fig.set_defaults(func=cmd_figure7)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FrontendError as exc:
        # Located parse/lex errors render a source excerpt with a caret.
        print(f"error: {format_diagnostic(exc)}", file=sys.stderr)
        return 2
    except (ExecutionError, BatchMergeError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
