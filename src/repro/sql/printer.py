"""Canonical printer for the SQL AST.

Emits a single normal form: every binary/NOT expression fully
parenthesized, keywords upper-case, aliases always spelled with ``AS``.
The printer exists for the round-trip property — ``parse(print(ast))``
must reproduce the AST exactly — so it never relies on precedence to
drop parentheses.
"""

from __future__ import annotations

from .ast import (
    CTE,
    EBin,
    ECall,
    EExpr,
    ELit,
    ENot,
    ERef,
    FromRel,
    JoinClause,
    QueryBody,
    SelectCore,
    SelectItem,
    SqlScript,
    SqlStatement,
    Star,
)


def print_expr(expr: EExpr) -> str:
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, ERef):
        return f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
    if isinstance(expr, ELit):
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return repr(expr.value)
    if isinstance(expr, EBin):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, ENot):
        return f"(NOT {print_expr(expr.operand)})"
    if isinstance(expr, ECall):
        if expr.arg is None:
            return f"{expr.func}(*)"
        inner = print_expr(expr.arg)
        if expr.distinct:
            return f"{expr.func}(DISTINCT {inner})"
        return f"{expr.func}({inner})"
    raise TypeError(f"cannot print expression {expr!r}")


def _print_item(item: SelectItem) -> str:
    text = print_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _print_rel(rel: FromRel) -> str:
    return f"{rel.name} AS {rel.alias}" if rel.alias else rel.name


def _print_join(join: JoinClause) -> str:
    prefix = "LEFT JOIN" if join.kind == "left" else "JOIN"
    return f"{prefix} {_print_rel(join.rel)} ON {print_expr(join.condition)}"


def _print_core(core: SelectCore) -> str:
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_print_item(i) for i in core.items))
    parts.append("FROM")
    parts.append(", ".join(_print_rel(r) for r in core.from_rels))
    for join in core.joins:
        parts.append(_print_join(join))
    if core.where is not None:
        parts.append(f"WHERE {print_expr(core.where)}")
    if core.group_by:
        parts.append(
            "GROUP BY " + ", ".join(print_expr(r) for r in core.group_by)
        )
    if core.having is not None:
        parts.append(f"HAVING {print_expr(core.having)}")
    return " ".join(parts)


def _print_body(body: QueryBody) -> str:
    text = " UNION ALL ".join(_print_core(c) for c in body.branches)
    if body.order_by:
        text += " ORDER BY " + ", ".join(
            print_expr(r) for r in body.order_by
        )
    if body.limit is not None:
        text += f" LIMIT {body.limit}"
    return text


def _print_cte(cte: CTE) -> str:
    return f"{cte.name} AS ({_print_body(cte.body)})"


def print_statement(stmt: SqlStatement) -> str:
    """Render one statement in canonical form (no trailing semicolon)."""
    text = ""
    if stmt.ctes:
        text = "WITH " + ", ".join(_print_cte(c) for c in stmt.ctes) + " "
    text += _print_body(stmt.body)
    if stmt.into is not None:
        text += f" INTO '{stmt.into}'"
    return text


def print_script(script: SqlScript) -> str:
    """Render a whole script, one statement per line, each terminated."""
    return ";\n".join(print_statement(s) for s in script.statements) + ";"
