"""Recursive-descent parser for the SQL subset.

Grammar (EBNF, keywords case-insensitive)::

    script      := statement (';' statement)* [';'] EOF
    statement   := ['WITH' cte (',' cte)*] body ['INTO' STRING]
    cte         := IDENT 'AS' '(' body ')'
    body        := core ('UNION' 'ALL' core)*
                   ['ORDER' 'BY' order_list] ['LIMIT' NUMBER]
    core        := 'SELECT' ['DISTINCT'] ('*' | item (',' item)*)
                   'FROM' from_rel (',' from_rel)* join_clause*
                   ['WHERE' expr] ['GROUP' 'BY' ref_list] ['HAVING' expr]
    join_clause := (('LEFT' ['OUTER']) | 'INNER')? 'JOIN' from_rel 'ON' expr
    from_rel    := IDENT [['AS'] IDENT]
    item        := expr [['AS'] IDENT]
    order_list  := ref ['ASC'] (',' ref ['ASC'])*
    expr        := or_expr          (same precedence ladder as SCOPE)
    ref         := IDENT ['.' IDENT]

Restrictions, each with a pointed error message: ``LIMIT`` requires
``ORDER BY`` (deterministic results, mirroring SCOPE's ``SELECT TOP``);
``ORDER BY``/``LIMIT`` cannot follow ``UNION ALL``; ``DESC`` is not
supported; ``*`` must be the only select item; a CTE body takes
``ORDER BY`` only together with ``LIMIT`` (an unlimited ORDER BY on an
intermediate relation is meaningless).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..scope.lexer import Token, TokenKind
from .ast import (
    CTE,
    EBin,
    ECall,
    EExpr,
    ELit,
    ENot,
    ERef,
    FromRel,
    JoinClause,
    QueryBody,
    SelectCore,
    SelectItem,
    SqlScript,
    SqlStatement,
    Star,
)
from .errors import SqlLexError, SqlParseError
from .lexer import tokenize

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


class SqlParser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self._text = text
        try:
            self._tokens = tokenize(text)
        except SqlLexError as exc:
            exc.source = text
            raise
        self._pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> SqlParseError:
        tok = self._cur
        return SqlParseError(f"{message}, found {tok}", tok.line,
                             tok.column, source=self._text)

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_symbol(self, sym: str) -> Token:
        if not self._cur.is_symbol(sym):
            raise self._error(f"expected {sym!r}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> str:
        if self._cur.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance().value

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, sym: str) -> bool:
        if self._cur.is_symbol(sym):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------

    def parse_script(self) -> SqlScript:
        statements: List[SqlStatement] = []
        while self._cur.kind is not TokenKind.EOF:
            statements.append(self._statement())
            if self._cur.kind is TokenKind.EOF:
                break
            self._expect_symbol(";")
        if not statements:
            raise self._error("empty script")
        return SqlScript(statements)

    def _statement(self) -> SqlStatement:
        ctes: List[CTE] = []
        if self._accept_keyword("WITH"):
            ctes.append(self._cte())
            while self._accept_symbol(","):
                ctes.append(self._cte())
        body = self._body()
        into: Optional[str] = None
        if self._accept_keyword("INTO"):
            if self._cur.kind is not TokenKind.STRING:
                raise self._error("expected output path string after INTO")
            into = self._advance().value
        return SqlStatement(body, tuple(ctes), into)

    def _cte(self) -> CTE:
        name = self._expect_ident("CTE name")
        self._expect_keyword("AS")
        self._expect_symbol("(")
        body = self._body()
        self._expect_symbol(")")
        if body.order_by and body.limit is None:
            raise self._error(
                f"CTE {name!r} has ORDER BY without LIMIT; ordering an "
                "intermediate relation has no effect"
            )
        return CTE(name, body)

    def _body(self) -> QueryBody:
        branches = [self._core()]
        while self._cur.is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            branches.append(self._core())
        order_by: Tuple[ERef, ...] = ()
        limit: Optional[int] = None
        if self._cur.is_keyword("ORDER") or self._cur.is_keyword("LIMIT"):
            if len(branches) > 1:
                raise self._error(
                    "ORDER BY / LIMIT cannot follow UNION ALL; wrap the "
                    "union in a CTE and select from it"
                )
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._order_list()
        if self._accept_keyword("LIMIT"):
            if self._cur.kind is not TokenKind.NUMBER:
                raise self._error("expected a row count after LIMIT")
            limit = int(self._advance().value)
            if not order_by:
                raise self._error(
                    "LIMIT requires an ORDER BY for deterministic results"
                )
        return QueryBody(tuple(branches), order_by, limit)

    def _order_list(self) -> Tuple[ERef, ...]:
        refs = [self._order_ref()]
        while self._accept_symbol(","):
            refs.append(self._order_ref())
        return tuple(refs)

    def _order_ref(self) -> ERef:
        ref = self._ref()
        if self._cur.is_keyword("DESC"):
            raise self._error("descending ORDER BY is not supported")
        self._accept_keyword("ASC")
        return ref

    def _core(self) -> SelectCore:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_symbol("*"):
            items: List[SelectItem] = [SelectItem(Star())]
            if self._cur.is_symbol(","):
                raise self._error("'*' must be the only select item")
        else:
            items = [self._item()]
            while self._accept_symbol(","):
                items.append(self._item())
        self._expect_keyword("FROM")
        from_rels = [self._from_rel()]
        while self._accept_symbol(","):
            from_rels.append(self._from_rel())
        joins: List[JoinClause] = []
        while self._cur.is_keyword("JOIN") or self._cur.is_keyword("LEFT") \
                or self._cur.is_keyword("INNER"):
            joins.append(self._join_clause())
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: Tuple[ERef, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            refs = [self._ref()]
            while self._accept_symbol(","):
                refs.append(self._ref())
            group_by = tuple(refs)
        having = self._expr() if self._accept_keyword("HAVING") else None
        return SelectCore(
            tuple(items), tuple(from_rels), tuple(joins), where, group_by,
            having, distinct,
        )

    def _item(self) -> SelectItem:
        expr = self._expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._cur.kind is TokenKind.IDENT:
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _join_clause(self) -> JoinClause:
        kind = "inner"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "left"
        elif self._accept_keyword("INNER"):
            pass
        self._expect_keyword("JOIN")
        rel = self._from_rel()
        self._expect_keyword("ON")
        condition = self._expr()
        return JoinClause(rel, condition, kind)

    def _from_rel(self) -> FromRel:
        name = self._expect_ident("table or CTE name")
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("relation alias")
        elif self._cur.kind is TokenKind.IDENT:
            alias = self._advance().value
        return FromRel(name, alias)

    # -- expressions ----------------------------------------------------

    def _expr(self) -> EExpr:
        return self._or_expr()

    def _or_expr(self) -> EExpr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = EBin("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> EExpr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = EBin("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> EExpr:
        if self._accept_keyword("NOT"):
            return ENot(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> EExpr:
        left = self._add_expr()
        for op in _COMPARISONS:
            if self._cur.is_symbol(op):
                self._advance()
                return EBin(op, left, self._add_expr())
        return left

    def _add_expr(self) -> EExpr:
        left = self._mul_expr()
        while self._cur.is_symbol("+") or self._cur.is_symbol("-"):
            op = self._advance().value
            left = EBin(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> EExpr:
        left = self._primary()
        while self._cur.is_symbol("*") or self._cur.is_symbol("/"):
            op = self._advance().value
            left = EBin(op, left, self._primary())
        return left

    def _primary(self) -> EExpr:
        tok = self._cur
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            if "." in tok.value:
                return ELit(float(tok.value))
            return ELit(int(tok.value))
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ELit(tok.value)
        if tok.is_symbol("("):
            self._advance()
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if tok.kind is TokenKind.IDENT:
            # Either a function call, a qualified ref, or a bare ref.
            name = self._advance().value
            if self._accept_symbol("("):
                if self._accept_symbol("*"):
                    self._expect_symbol(")")
                    return ECall(name, None)
                distinct = self._accept_keyword("DISTINCT")
                arg = self._expr()
                self._expect_symbol(")")
                return ECall(name, arg, distinct)
            if self._accept_symbol("."):
                column = self._expect_ident("column name")
                return ERef(column, qualifier=name)
            return ERef(name)
        raise self._error("expected expression")

    def _ref(self) -> ERef:
        name = self._expect_ident("column reference")
        if self._accept_symbol("."):
            column = self._expect_ident("column name")
            return ERef(column, qualifier=name)
        return ERef(name)


def parse_sql(text: str) -> SqlScript:
    """Parse a SQL script into its AST."""
    return SqlParser(text).parse_script()
