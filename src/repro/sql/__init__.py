"""SQL-subset frontend over the shared logical DAG.

A sibling of :mod:`repro.scope`: its own lexer, recursive-descent
parser and compiler covering SELECT / WHERE / JOIN ... ON / GROUP BY +
aggregates / HAVING / ORDER BY / LIMIT / UNION ALL and WITH-clause
CTEs, referencing tables registered in the catalog by name.  The
compiler desugars the SQL AST into SCOPE statements and drives the
SCOPE compiler, so a CTE referenced N times becomes one DAG node with N
parents — exactly the explicitly shared subexpressions of the paper's
Algorithm 1 — and the whole downstream stack (CSE detection, phase-1/2
optimization, verification, plan cache, admission batching, both
backends, both runtimes) works unchanged.  See ``docs/sql.md``.
"""

from .ast import CTE, QueryBody, SelectCore, SqlScript, SqlStatement, Star
from .compiler import SQL_EXTRACTOR, compile_sql
from .errors import (
    SqlError,
    SqlLexError,
    SqlParseError,
    SqlResolutionError,
)
from .parser import parse_sql
from .printer import print_script, print_statement

__all__ = [
    "CTE",
    "QueryBody",
    "SQL_EXTRACTOR",
    "SelectCore",
    "SqlError",
    "SqlLexError",
    "SqlParseError",
    "SqlResolutionError",
    "SqlScript",
    "SqlStatement",
    "Star",
    "compile_sql",
    "parse_sql",
    "print_script",
    "print_statement",
]
