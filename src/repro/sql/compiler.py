"""Compile parsed SQL into the logical DAG by desugaring to SCOPE.

The strategy: translate each SQL statement into the equivalent sequence
of SCOPE statements (EXTRACT for every referenced table, one SELECT per
CTE, one SELECT plus OUTPUT for the main query body) and feed them into
the *SCOPE compiler's* incremental API.  Both dialects then share a
single name-resolution and lowering path, so a SQL query and its
hand-translated SCOPE twin compile to byte-identical plans — and a CTE
referenced N times becomes, through the shared environment, one DAG
node with N parents: exactly the explicitly shared common
subexpressions of the paper.

Internal relation names are prefixed with ``#`` (``#t<file_id>``,
``#cte<i>_<name>``, ``#q<i>``), a character the SQL lexer rejects in
identifiers, so synthesized names can never collide with user names.
Each table binding keeps its SQL-visible name as the binding alias, so
qualified references and join-clash renames behave identically in both
dialects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..plan.logical import LogicalPlan
from ..scope.ast import (
    ExtractStmt,
    FromRel,
    OutputStmt,
    SelectItem,
    SelectQuery,
    SelectStmt,
)
from ..scope.catalog import Catalog, FileStats
from ..scope.compiler import Compiler
from .ast import ERef, JoinClause, QueryBody, SelectCore, SqlScript, Star
from .errors import SqlResolutionError
from .parser import parse_sql

#: Extractor name stamped on tables referenced from SQL.  It is part of
#: plan identity, so SCOPE scripts that should compile to the *same*
#: plan as a SQL query must extract ``USING SqlExtractor`` too.
SQL_EXTRACTOR = "SqlExtractor"


def _table_stem(path: str) -> str:
    """The SQL-visible table name of a file path: basename, no extension."""
    base = path.rsplit("/", 1)[-1]
    return base.rsplit(".", 1)[0] if "." in base else base


class SqlCompiler:
    """Desugars a SQL script into SCOPE statements and compiles them."""

    def __init__(self, catalog: Catalog):
        self._compiler = Compiler(catalog)
        #: file path -> internal EXTRACT target, to extract each once.
        self._extract_names: Dict[str, str] = {}
        self._tables: Dict[str, List[FileStats]] = {}
        for stats in catalog.files():
            self._tables.setdefault(_table_stem(stats.path), []).append(stats)

    def compile(self, script: SqlScript) -> LogicalPlan:
        for index, stmt in enumerate(script.statements, start=1):
            ctes: Dict[str, str] = {}
            for cte in stmt.ctes:
                if cte.name in ctes:
                    raise SqlResolutionError(
                        f"duplicate CTE name {cte.name!r} in one WITH clause"
                    )
                internal = f"#cte{index}_{cte.name}"
                queries = self._desugar_body(cte.body, ctes)
                self._compiler.add_statement(SelectStmt(internal, queries))
                ctes[cte.name] = internal
            target = f"#q{index}"
            queries = self._desugar_body(stmt.body, ctes)
            self._compiler.add_statement(SelectStmt(target, queries))
            # LIMIT became a TopN inside the SELECT; a bare statement
            # ORDER BY requests a sorted output file instead.
            output_order = stmt.body.order_by if stmt.body.limit is None else ()
            path = stmt.into or f"q{index}.out"
            self._compiler.add_statement(
                OutputStmt(target, path, output_order)
            )
        return self._compiler.finish()

    # -- desugaring -----------------------------------------------------

    def _desugar_body(
        self, body: QueryBody, ctes: Dict[str, str]
    ) -> Tuple[SelectQuery, ...]:
        queries = []
        for core in body.branches:
            top = body.limit if len(body.branches) == 1 else None
            top_order = body.order_by if top is not None else ()
            queries.append(self._desugar_core(core, ctes, top, top_order))
        return tuple(queries)

    def _desugar_core(
        self,
        core: SelectCore,
        ctes: Dict[str, str],
        top: Optional[int],
        top_order: Tuple[ERef, ...],
    ) -> SelectQuery:
        from_rels = tuple(self._resolve_rel(r, ctes) for r in core.from_rels)
        joins = tuple(
            JoinClause(self._resolve_rel(j.rel, ctes), j.condition, j.kind)
            for j in core.joins
        )
        items = core.items
        if len(items) == 1 and isinstance(items[0].expr, Star):
            items = self._expand_star(from_rels, joins)
        return SelectQuery(
            items=items,
            from_rels=from_rels,
            where=core.where,
            group_by=core.group_by,
            having=core.having,
            distinct=core.distinct,
            joins=joins,
            top=top,
            top_order=top_order,
        )

    def _resolve_rel(self, rel: FromRel, ctes: Dict[str, str]) -> FromRel:
        """Map a surface relation name to its internal environment name.

        CTEs of the current statement shadow catalog tables.  The
        SQL-visible name stays as the binding alias so qualified
        references resolve against what the user wrote.
        """
        binding = rel.alias or rel.name
        internal = ctes.get(rel.name)
        if internal is None:
            internal = self._extract_table(rel.name)
        return FromRel(internal, binding)

    def _extract_table(self, name: str) -> str:
        candidates = self._tables.get(name)
        if not candidates:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise SqlResolutionError(
                f"unknown table {name!r}; catalog tables: {known}"
            )
        if len(candidates) > 1:
            paths = ", ".join(sorted(s.path for s in candidates))
            raise SqlResolutionError(
                f"table name {name!r} is ambiguous across files: {paths}"
            )
        stats = candidates[0]
        internal = self._extract_names.get(stats.path)
        if internal is None:
            internal = f"#t{stats.file_id}"
            self._compiler.add_statement(
                ExtractStmt(
                    internal,
                    tuple(stats.schema.names),
                    stats.path,
                    SQL_EXTRACTOR,
                )
            )
            self._extract_names[stats.path] = internal
        return internal

    def _expand_star(
        self, from_rels: Tuple[FromRel, ...], joins: Tuple[JoinClause, ...]
    ) -> Tuple[SelectItem, ...]:
        """Expand ``SELECT *`` to qualified refs over all FROM bindings."""
        items: List[SelectItem] = []
        seen: Dict[str, str] = {}
        rels = list(from_rels) + [j.rel for j in joins]
        for rel in rels:
            binding = rel.alias or rel.name
            plan = self._compiler.lookup(rel.name)
            assert plan is not None, rel.name
            for col in plan.schema.names:
                clash = seen.get(col)
                if clash is not None:
                    raise SqlResolutionError(
                        f"SELECT * is ambiguous: column {col!r} comes from "
                        f"both {clash!r} and {binding!r}; list the columns "
                        "explicitly"
                    )
                seen[col] = binding
                items.append(SelectItem(ERef(col, qualifier=binding)))
        return tuple(items)


def compile_sql(text: str, catalog: Catalog, tracer=None) -> LogicalPlan:
    """Parse and compile SQL ``text`` into a logical DAG in one call.

    The SQL twin of :func:`repro.scope.compiler.compile_script`:
    ``tracer`` records the same ``parse`` and ``compile`` spans.
    """
    if tracer is None:
        from ..obs.tracer import NULL_TRACER

        tracer = NULL_TRACER
    with tracer.span("parse") as span:
        script = parse_sql(text)
        span.set(statements=len(script.statements))
    with tracer.span("compile") as span:
        logical = SqlCompiler(catalog).compile(script)
        span.set(operators=logical.count_operators())
    return logical
