"""Abstract syntax tree of the SQL subset.

Expression and clause nodes are *shared with the SCOPE AST*
(:mod:`repro.scope.ast`): both frontends produce the same ``EExpr``
nodes, ``SelectItem``, ``FromRel`` and ``JoinClause``, which is what
lets the SQL compiler desugar into SCOPE statements and guarantee
identical lowering.  The SQL-only structure lives here: query bodies
with UNION ALL branches and statement-level ORDER BY / LIMIT, WITH
clauses, and the ``*`` select item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..scope.ast import (  # noqa: F401 - re-exported for frontend callers
    EBin,
    ECall,
    EExpr,
    ELit,
    ENot,
    ERef,
    FromRel,
    JoinClause,
    SelectItem,
)


@dataclass(frozen=True)
class Star(EExpr):
    """``SELECT *`` — expanded against the FROM schemas at compile time."""


@dataclass(frozen=True)
class SelectCore:
    """One SELECT block (a UNION ALL branch) without ORDER BY / LIMIT."""

    items: Tuple[SelectItem, ...]
    from_rels: Tuple[FromRel, ...]
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[EExpr] = None
    group_by: Tuple[ERef, ...] = ()
    having: Optional[EExpr] = None
    distinct: bool = False


@dataclass(frozen=True)
class QueryBody:
    """A full query: UNION ALL branches plus the trailing ORDER/LIMIT.

    ``limit`` always comes with a non-empty ``order_by`` (the parser
    enforces determinism, mirroring SCOPE's ``SELECT TOP``); a bare
    ``order_by`` on a statement body requests a sorted output file.
    """

    branches: Tuple[SelectCore, ...]
    order_by: Tuple[ERef, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class CTE:
    """One ``WITH name AS (body)`` entry."""

    name: str
    body: QueryBody


@dataclass(frozen=True)
class SqlStatement:
    """``[WITH ...] SELECT ... [INTO 'path']``.

    ``into`` names the output file; without it the compiler assigns
    ``q<i>.out`` by 1-based statement position.
    """

    body: QueryBody
    ctes: Tuple[CTE, ...] = ()
    into: Optional[str] = None


@dataclass
class SqlScript:
    """A parsed SQL script: an ordered list of statements."""

    statements: List[SqlStatement] = field(default_factory=list)
