"""Tokenizer for the SQL subset.

Reuses the SCOPE lexer's :class:`~repro.scope.lexer.Token` type so the
parsers share helpers, but with SQL surface rules: ``--`` line
comments, single-quoted string literals, and ``!=`` normalized to
``<>`` at lex time (one comparison spelling downstream).
Keywords are case-insensitive; identifiers are case-sensitive.
"""

from __future__ import annotations

from typing import Iterator, List

from ..scope.lexer import Token, TokenKind
from .errors import SqlLexError

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "AS",
    "AND",
    "OR",
    "NOT",
    "UNION",
    "ALL",
    "WITH",
    "INTO",
}

SYMBOLS = (
    # Longest first so <= beats < and != lexes as one token.
    "<=",
    ">=",
    "<>",
    "!=",
    "=",
    "<",
    ">",
    "(",
    ")",
    ",",
    ";",
    "*",
    ".",
    "+",
    "-",
    "/",
)


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL ``text`` into a list ending with an EOF token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        col = pos - line_start + 1
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("--", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if ch == "'":
            end = text.find("'", pos + 1)
            if end == -1:
                raise SqlLexError("unterminated string literal", line, col)
            yield Token(TokenKind.STRING, text[pos + 1 : end], line, col)
            pos = end + 1
            continue
        if ch.isdigit():
            start = pos
            while pos < n and (text[pos].isdigit() or text[pos] == "."):
                pos += 1
            yield Token(TokenKind.NUMBER, text[start:pos], line, col)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            if word.upper() in KEYWORDS:
                yield Token(TokenKind.KEYWORD, word.upper(), line, col)
            else:
                yield Token(TokenKind.IDENT, word, line, col)
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, pos):
                value = "<>" if sym == "!=" else sym
                yield Token(TokenKind.SYMBOL, value, line, col)
                pos += len(sym)
                break
        else:
            raise SqlLexError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenKind.EOF, "", line, n - line_start + 1)
