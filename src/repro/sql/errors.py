"""User-facing errors raised by the SQL frontend.

Mirrors :mod:`repro.scope.errors` over the shared
:mod:`repro.frontend.errors` base, so diagnostics from both dialects
render identically (same ``kind at line:column: message`` format, same
source excerpt).
"""

from __future__ import annotations

from ..frontend.errors import FrontendError, LocatedError


class SqlError(FrontendError):
    """Base class for all SQL frontend errors."""


class SqlLexError(LocatedError, SqlError):
    """Invalid character or malformed token in a SQL script."""

    kind = "lex error"


class SqlParseError(LocatedError, SqlError):
    """SQL script does not match the grammar."""

    kind = "parse error"


class SqlResolutionError(SqlError):
    """Name resolution failure (unknown table/CTE/column, ambiguity...)."""
