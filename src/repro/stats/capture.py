"""Capture measured fragment cardinalities from an executed run.

The executors record the measured output rows of every plan fragment
they run, keyed by memo group id, in
:attr:`repro.exec.metrics.ExecutionMetrics.fragment_rows` — interior
fragments (a filter feeding a local pre-aggregation, a shared
aggregate inside a consumer pipeline) included, not just the
stage-graph vertex boundaries.  This module maps those group ids back
to the canonical fragment fingerprints the estimator stamped on the
memo and emits one :class:`~repro.stats.store.FragmentObservation` per
distinct fragment, pairing the measurement with the optimizer's
estimate for the same group (``memo.group(gid).stats.rows``).

Deduplication matters twice over.  The executors already count each
group id once per run (a conventional plan re-executes shared work;
only the first execution records).  On top of that, several groups can
share one *fingerprint* — Spool and Output are cardinality-transparent
and share their child's statistics object — so the observation for the
smallest group id wins, deterministically.

Fragments whose estimate is missing (``stats.rows <= 0``, mirroring
``VertexStats.estimate_missing``) are *skipped entirely* — a sentinel
estimate of zero is not a q-error-1 match, and must not seed a
correction (see ``repro.obs.report``).

Both executors record fragment rows, so sequential runs (``workers=0``)
feed the loop exactly like scheduled ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..plan.logical import LogicalExtract
from ..plan.physical import PhysExtract, PhysicalPlan
from .store import FragmentObservation


def plan_paths(root: PhysicalPlan) -> Tuple[str, ...]:
    """Input files read anywhere under ``root`` (DAG-aware), sorted."""
    paths = set()
    seen = set()

    def walk(node: PhysicalPlan) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node.op, PhysExtract):
            paths.add(node.op.path)
        for child in node.children:
            walk(child)

    walk(root)
    return tuple(sorted(paths))


def group_paths(memo, gid: int,
                _cache: Optional[Dict[int, Tuple[str, ...]]] = None
                ) -> Tuple[str, ...]:
    """Input files read anywhere under memo group ``gid``, sorted."""
    cache: Dict[int, Tuple[str, ...]] = _cache if _cache is not None else {}

    def walk(group_id: int) -> Tuple[str, ...]:
        cached = cache.get(group_id)
        if cached is not None:
            return cached
        cache[group_id] = ()  # cycle guard; memos are acyclic anyway
        expr = memo.group(group_id).initial_expr
        paths = set()
        if isinstance(expr.op, LogicalExtract):
            paths.add(expr.op.path)
        for child in expr.children:
            paths.update(walk(child))
        result = tuple(sorted(paths))
        cache[group_id] = result
        return result

    return walk(gid)


def capture_observations(memo, stage_graph, metrics
                         ) -> List[FragmentObservation]:
    """One observation per distinct executed fragment.

    ``memo`` must be the memo the executed plan's ``group_id``s refer to
    (:attr:`repro.cse.pipeline.CseOptimizationResult.plan_memo` — *not*
    necessarily ``memo``, which stays the spooled one when the
    conventional fallback wins).  ``stage_graph`` is only used to label
    observations with the vertex that ran them (``None`` for sequential
    runs).
    """
    if metrics is None or memo is None:
        return []
    owner: Dict[int, str] = {}
    for name in sorted(metrics.vertices):
        for gid in metrics.vertices[name].fragment_rows:
            owner.setdefault(gid, name)
    path_cache: Dict[int, Tuple[str, ...]] = {}
    best: Dict[str, Tuple[int, FragmentObservation]] = {}
    for gid in sorted(metrics.fragment_rows):
        actual = metrics.fragment_rows[gid]
        try:
            group = memo.group(gid)
        except (KeyError, IndexError):
            continue
        stats = group.stats
        if stats is None or stats.fingerprint is None:
            continue
        if stats.rows <= 0:
            # Estimate missing: nothing to compare against (see
            # VertexStats.estimate_missing / repro.obs.report).
            continue
        observation = FragmentObservation(
            fingerprint=stats.fingerprint,
            estimated=float(stats.rows),
            actual=int(actual),
            paths=group_paths(memo, gid, path_cache),
            vertex=owner.get(gid, "seq"),
        )
        incumbent = best.get(stats.fingerprint)
        if incumbent is None or gid < incumbent[0]:
            best[stats.fingerprint] = (gid, observation)
    return [best[fp][1] for fp in sorted(best)]
