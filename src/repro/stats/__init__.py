"""Learned statistics: cardinality feedback from execution to optimizer.

The package closes the loop the observability layer opened: per-vertex
measured cardinalities (``repro.obs``'s q-error report) are captured as
:class:`~repro.stats.store.FragmentObservation` records keyed on
**canonical fragment fingerprints** — deep payload hashes of the logical
subexpression a plan fragment computes, stable across optimizations,
scripts and merged batches — accumulated in a versioned
:class:`~repro.stats.store.FeedbackStore`, and published as a
:class:`~repro.stats.store.CorrectionSet` the
:class:`~repro.optimizer.cardinality.CardinalityEstimator` consults
while deriving statistics.

Only the dependency-light leaves are imported here; the controller that
wires the loop into a :class:`repro.service.QueryService` lives in
:mod:`repro.stats.feedback` (import it explicitly — it pulls in the
optimizer and cost model).
"""

from .fragments import expr_fingerprint, fragment_fingerprints
from .store import (
    CorrectionSet,
    FeedbackStore,
    FragmentFeedback,
    FragmentObservation,
)

__all__ = [
    "CorrectionSet",
    "FeedbackStore",
    "FragmentFeedback",
    "FragmentObservation",
    "expr_fingerprint",
    "fragment_fingerprints",
]
