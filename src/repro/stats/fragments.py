"""Canonical fragment fingerprints for learned statistics.

A *fragment fingerprint* names the logical result a plan fragment
computes: a deep SHA-256 over the root operator's full payload and the
fingerprints of its inputs.  Like
:func:`repro.cse.merge.script_fingerprint` (whose payload-token scheme
this mirrors) it is an exact identity — collisions would misattribute a
measured cardinality to the wrong fragment — but it is computed
per-*fragment* rather than per-script, bottom-up alongside cardinality
derivation, so a correction learned under one script applies to the same
subexpression wherever it reappears (another script, a merged batch, a
re-optimization after a statistics update).

Cardinality-transparent wrappers (``Spool``, ``Output``) inherit their
input's fingerprint: the spool vertex materializing a shared result and
the vertex computing it observe the *same* logical cardinality, so both
must feed the same correction.

This module is a dependency leaf (plan layer only) so the estimator can
import it without cycles.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Dict, Iterable, Optional

from ..plan.columns import Schema

#: Fingerprint of a fragment whose identity is unknown (an input carried
#: no fingerprint); propagating ``None`` disables correction lookup for
#: everything above it rather than guessing.
NO_FINGERPRINT = None


def _token(value) -> str:
    """Deterministic, payload-complete serialization of a field value."""
    if isinstance(value, Schema):
        cols = ",".join(f"{c.name}:{c.ctype.value}" for c in value)
        return f"[{cols}]"
    if isinstance(value, tuple):
        return "(" + ",".join(_token(v) for v in value) + ")"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _payload_token(value)
    return repr(value)


def _payload_token(obj) -> str:
    """Canonical description of a dataclass payload (operator or expr)."""
    fields = ",".join(
        f"{f.name}={_token(getattr(obj, f.name))}"
        for f in dataclasses.fields(obj)
    )
    return f"{type(obj).__name__}({fields})"


def expr_fingerprint(op, child_fingerprints: Iterable[Optional[str]]
                     ) -> Optional[str]:
    """Fingerprint of ``op`` applied to already-fingerprinted inputs.

    Returns ``None`` when any input's fingerprint is unknown — a
    correction can only be keyed on a fully identified fragment.
    """
    parts = [_payload_token(op)]
    for child in child_fingerprints:
        if child is None:
            return NO_FINGERPRINT
        parts.append(child)
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


def fragment_fingerprints(memo) -> Dict[int, Optional[str]]:
    """Fingerprint of every group's fragment, from its annotated stats.

    Requires the memo to have been annotated by the estimator
    (:func:`repro.optimizer.cardinality.annotate_memo` stores the
    fingerprint on each group's :class:`Stats`).  Groups without stats
    map to ``None``.
    """
    out: Dict[int, Optional[str]] = {}
    for gid in memo.reachable_from_root():
        stats = memo.group(gid).stats
        out[gid] = stats.fingerprint if stats is not None else None
    return out
