"""Re-price an already-chosen physical plan under different statistics.

The adoption gate of the feedback loop (``repro.stats.feedback``) must
compare like with like: a candidate re-optimized plan is priced under
*corrected* statistics, so the incumbent plan has to be re-priced under
the same corrections before the two costs mean anything side by side.
Comparing the incumbent's stale stored cost against a corrected
candidate cost would systematically favour whichever side the
correction happened to shrink.

:func:`recost_plan` rebuilds the plan bottom-up: fresh per-group
statistics are derived from the memo's initial expressions with an
estimator carrying the corrections, every node is re-priced through the
same :class:`~repro.optimizer.cost.CostModel` formulas the engine used,
and the result is priced DAG-aware (spools built once, re-reads per
extra consumer).  With no corrections this reproduces the engine's
original cost exactly — a property the test suite pins down.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..optimizer.cardinality import CardinalityEstimator, Stats
from ..optimizer.cost import CostModel
from ..optimizer.engine import OptimizerConfig
from ..plan.physical import PhysicalPlan
from ..scope.catalog import Catalog


def recost_plan(
    plan: PhysicalPlan,
    memo,
    catalog: Catalog,
    config: Optional[OptimizerConfig] = None,
    corrections=None,
) -> Tuple[PhysicalPlan, float]:
    """Rebuild ``plan`` with statistics derived under ``corrections``.

    ``memo`` must be the memo the plan's ``group_id``s refer to
    (``CseOptimizationResult.plan_memo``).  Returns ``(rebuilt plan,
    DAG cost)``; the input plan is left untouched.
    """
    config = config or OptimizerConfig()
    estimator = CardinalityEstimator(
        catalog, machines=config.cost_params.machines,
        corrections=corrections,
    )
    cost_model = CostModel(config.cost_params)

    fresh: Dict[int, Stats] = {}

    def group_stats(gid: int) -> Stats:
        cached = fresh.get(gid)
        if cached is not None:
            return cached
        group = memo.group(gid)
        expr = group.initial_expr
        child_stats = [group_stats(child) for child in expr.children]
        stats = estimator.derive(expr.op, child_stats, group.schema)
        fresh[gid] = stats
        return stats

    def node_stats(node: PhysicalPlan) -> Stats:
        gid = node.group_id
        if gid is not None:
            try:
                return group_stats(gid)
            except (KeyError, IndexError):
                pass
        # Unmapped node (should not happen for engine-built plans):
        # fall back to the stats baked in at optimization time.
        return Stats(node.rows, {}, float(node.schema.row_width_bytes()))

    rebuilt: Dict[int, PhysicalPlan] = {}

    def rebuild(node: PhysicalPlan) -> PhysicalPlan:
        cached = rebuilt.get(id(node))
        if cached is not None:
            return cached
        children = [rebuild(child) for child in node.children]
        out_stats = node_stats(node)
        child_stats = [node_stats(child) for child in node.children]
        self_cost = cost_model.operator_cost(
            node.op, out_stats, children, child_stats
        )
        replaced = dataclasses.replace(
            node,
            children=children,
            rows=out_stats.rows,
            self_cost=self_cost,
            cost=self_cost + sum(child.cost for child in children),
        )
        rebuilt[id(node)] = replaced
        return replaced

    repriced = rebuild(plan)
    return repriced, cost_model.dag_cost(repriced)
