"""Versioned store of measured per-fragment cardinalities.

The store accumulates :class:`FragmentObservation` records (one per
fragment per run, deduplicated by the capture layer) into per-fragment
:class:`FragmentFeedback` aggregates, and *publishes* vetted corrections
as immutable :class:`CorrectionSet` snapshots the estimator consults.

Accumulation and publication are deliberately separate steps: recording
an observation never changes what the optimizer sees.  Corrections only
become visible when :meth:`FeedbackStore.publish` is called — by the
feedback controller, which gates publication on the q-error threshold
and the minimum observation count, and routes the activation through
the plan cache's statistics-version invalidation so cached plans can
never silently disagree with the active corrections.

Thread safety: all store mutators take an internal lock; published
``CorrectionSet`` snapshots are immutable and safe to share with
concurrent optimizations.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.report import qerror


@dataclass(frozen=True)
class FragmentObservation:
    """One run's measured cardinality of one plan fragment."""

    #: Canonical fragment fingerprint (see ``repro.stats.fragments``).
    fingerprint: str
    #: The estimate the optimizer used for this fragment in the run.
    estimated: float
    #: Measured output rows of the fragment.
    actual: int
    #: Input files the fragment (transitively) reads — the invalidation
    #: scope of a correction derived from this observation.
    paths: Tuple[str, ...] = ()
    #: Vertex the observation came from (diagnostics only).
    vertex: str = ""

    @property
    def qerror(self) -> Optional[float]:
        return qerror(self.estimated, self.actual)


@dataclass
class FragmentFeedback:
    """Accumulated observations of one fragment."""

    fingerprint: str
    paths: Tuple[str, ...] = ()
    observations: int = 0
    total_actual: float = 0.0
    last_actual: int = 0
    #: Estimate used by the *most recent* run (reflects any correction
    #: already active when that run was optimized).
    last_estimated: float = 0.0

    @property
    def mean_actual(self) -> float:
        if self.observations == 0:
            return 0.0
        return self.total_actual / self.observations

    @property
    def current_qerror(self) -> Optional[float]:
        """q-error of the latest estimate against the mean measurement."""
        return qerror(self.last_estimated, self.mean_actual)


@dataclass(frozen=True)
class Correction:
    """One published cardinality correction."""

    fingerprint: str
    rows: float
    observations: int
    paths: Tuple[str, ...] = ()


class CorrectionSet:
    """Immutable snapshot of the active corrections, with a version.

    The estimator holds one of these for the duration of an optimization
    run; the version participates in telemetry and decision cards (cache
    freshness is carried by the per-path statistics versions the service
    bumps on publication, not by this number).
    """

    __slots__ = ("version", "_rows")

    def __init__(self, version: int = 0,
                 corrections: Optional[Dict[str, Correction]] = None):
        self.version = version
        self._rows: Dict[str, Correction] = dict(corrections or {})

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._rows

    def rows_for(self, fingerprint: Optional[str]) -> Optional[float]:
        """Corrected output rows for a fragment, or ``None``."""
        if fingerprint is None:
            return None
        correction = self._rows.get(fingerprint)
        return correction.rows if correction is not None else None

    def get(self, fingerprint: str) -> Optional[Correction]:
        return self._rows.get(fingerprint)

    def corrections(self) -> List[Correction]:
        return [self._rows[fp] for fp in sorted(self._rows)]

    def merged(self, updates: Iterable[Correction],
               version: int) -> "CorrectionSet":
        """A new snapshot with ``updates`` folded in."""
        merged = dict(self._rows)
        for correction in updates:
            merged[correction.fingerprint] = correction
        return CorrectionSet(version, merged)


EMPTY_CORRECTIONS = CorrectionSet()


@dataclass
class StoreStats:
    """Additive counters of one store's lifetime."""

    observations: int = 0
    fragments: int = 0
    publications: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "feedback_observations": self.observations,
            "feedback_fragments": self.fragments,
            "feedback_publications": self.publications,
        }


class FeedbackStore:
    """Thread-safe accumulator of fragment observations."""

    def __init__(self):
        self._lock = threading.Lock()
        self._fragments: Dict[str, FragmentFeedback] = {}
        self._active = EMPTY_CORRECTIONS
        self.version = 0
        self.stats = StoreStats()

    # -- recording ---------------------------------------------------------

    def record(self, observations: Iterable[FragmentObservation]) -> int:
        """Fold a run's observations in; returns the number recorded."""
        count = 0
        with self._lock:
            for obs in observations:
                entry = self._fragments.get(obs.fingerprint)
                if entry is None:
                    entry = FragmentFeedback(
                        fingerprint=obs.fingerprint, paths=obs.paths
                    )
                    self._fragments[obs.fingerprint] = entry
                    self.stats.fragments += 1
                entry.observations += 1
                entry.total_actual += obs.actual
                entry.last_actual = obs.actual
                entry.last_estimated = obs.estimated
                if obs.paths:
                    entry.paths = tuple(sorted(set(entry.paths) | set(obs.paths)))
                count += 1
                self.stats.observations += 1
        return count

    # -- introspection -----------------------------------------------------

    def fragment(self, fingerprint: str) -> Optional[FragmentFeedback]:
        with self._lock:
            return self._fragments.get(fingerprint)

    def fragments(self) -> List[FragmentFeedback]:
        with self._lock:
            return [self._fragments[fp] for fp in sorted(self._fragments)]

    def active(self) -> CorrectionSet:
        with self._lock:
            return self._active

    # -- candidate selection and publication -------------------------------

    def candidates(self, qerror_threshold: float) -> List[FragmentFeedback]:
        """Fragments whose estimate is off by at least the threshold.

        A fragment already corrected to (approximately) its measured
        mean is *converged* and never re-candidates, even though a
        zero-row measurement keeps its raw q-error infinite forever.
        """
        out = []
        with self._lock:
            for fp in sorted(self._fragments):
                entry = self._fragments[fp]
                err = entry.current_qerror
                if err is None or err < qerror_threshold:
                    continue
                active = self._active.get(fp)
                if active is not None and \
                        abs(active.rows - entry.mean_actual) < 0.5:
                    continue  # already corrected; waiting for re-opt
                out.append(entry)
        return out

    def publish(self, fragments: Iterable[FragmentFeedback]) -> CorrectionSet:
        """Activate corrections for ``fragments``; returns the snapshot.

        The correction value is the running mean of the measured
        cardinalities (a skew-robust default: deterministic data makes
        it exact after one observation, noisy data converges).
        """
        updates = [
            Correction(
                fingerprint=entry.fingerprint,
                rows=max(1.0, entry.mean_actual),
                observations=entry.observations,
                paths=entry.paths,
            )
            for entry in fragments
        ]
        with self._lock:
            if not updates:
                return self._active
            self.version += 1
            self.stats.publications += 1
            self._active = self._active.merged(updates, self.version)
            return self._active

    def affected_paths(self, fragments: Iterable[FragmentFeedback]
                       ) -> Tuple[str, ...]:
        paths: set = set()
        for entry in fragments:
            paths |= set(entry.paths)
        return tuple(sorted(paths))

    # -- persistence --------------------------------------------------------

    #: On-disk format version; bump on any incompatible schema change.
    FORMAT = 1

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of the whole store state."""
        with self._lock:
            return {
                "format": self.FORMAT,
                "version": self.version,
                "stats": {
                    "observations": self.stats.observations,
                    "fragments": self.stats.fragments,
                    "publications": self.stats.publications,
                },
                "fragments": [
                    {
                        "fingerprint": entry.fingerprint,
                        "paths": list(entry.paths),
                        "observations": entry.observations,
                        "total_actual": entry.total_actual,
                        "last_actual": entry.last_actual,
                        "last_estimated": entry.last_estimated,
                    }
                    for fp in sorted(self._fragments)
                    for entry in (self._fragments[fp],)
                ],
                "active": {
                    "version": self._active.version,
                    "corrections": [
                        {
                            "fingerprint": c.fingerprint,
                            "rows": c.rows,
                            "observations": c.observations,
                            "paths": list(c.paths),
                        }
                        for c in self._active.corrections()
                    ],
                },
            }

    def save(self, path: str) -> None:
        """Atomically write the store snapshot to ``path`` as JSON.

        Written via a sibling temp file + ``os.replace`` so a reader (or
        a crash mid-write) never sees a torn file.
        """
        data = self.to_json()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True, indent=2)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "FeedbackStore":
        """Rebuild a store from a :meth:`save` snapshot.

        Raises :class:`ValueError` on an unknown format stamp rather
        than guessing — learned statistics silently misread would
        corrupt every later gate decision.
        """
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        fmt = data.get("format")
        if fmt != cls.FORMAT:
            raise ValueError(
                f"feedback store {path!r} has format {fmt!r}; "
                f"this build reads format {cls.FORMAT}"
            )
        store = cls()
        store.version = int(data.get("version", 0))
        stats = data.get("stats", {})
        store.stats = StoreStats(
            observations=int(stats.get("observations", 0)),
            fragments=int(stats.get("fragments", 0)),
            publications=int(stats.get("publications", 0)),
        )
        for raw in data.get("fragments", ()):
            entry = FragmentFeedback(
                fingerprint=raw["fingerprint"],
                paths=tuple(raw.get("paths", ())),
                observations=int(raw.get("observations", 0)),
                total_actual=float(raw.get("total_actual", 0.0)),
                last_actual=int(raw.get("last_actual", 0)),
                last_estimated=float(raw.get("last_estimated", 0.0)),
            )
            store._fragments[entry.fingerprint] = entry
        active = data.get("active", {})
        corrections = {
            raw["fingerprint"]: Correction(
                fingerprint=raw["fingerprint"],
                rows=float(raw["rows"]),
                observations=int(raw.get("observations", 0)),
                paths=tuple(raw.get("paths", ())),
            )
            for raw in active.get("corrections", ())
        }
        if corrections or active.get("version", 0):
            store._active = CorrectionSet(
                int(active.get("version", 0)), corrections
            )
        return store
