"""The risk-gated cardinality-feedback controller.

Closes the loop over a :class:`repro.service.QueryService`::

    capture -> correct -> gate -> re-optimize

1. **Capture** — after each scheduled run, per-vertex measured
   cardinalities are mapped back to canonical fragment fingerprints
   (:mod:`repro.stats.capture`) and recorded in a
   :class:`~repro.stats.store.FeedbackStore`.
2. **Correct** — fragments whose current estimate is off by at least
   ``qerror_threshold`` become correction candidates; the corrected
   value is the running mean of the measurements.
3. **Gate** — two explicit decision gates, recorded as
   :class:`FeedbackDecision` cards and published as
   ``stats.feedback.decision`` events:

   * **Gate A (correction admission)** — a candidate backed by fewer
     than ``min_observations`` runs is *not* published (a single skewed
     sample must not rewrite the statistics).
   * **Gate B (plan adoption)** — after publication invalidates
     dependent cache entries, each former entry is re-optimized under
     the corrected statistics; the rewrite is adopted only if its cost
     beats the *incumbent plan re-priced under the same corrections*
     (:mod:`repro.stats.recost`) by at least ``adoption_margin``.
     Otherwise the incumbent is re-inserted under the fresh cache key
     and keeps serving.

4. **Re-optimize** — adoption flows through the service's existing
   statistics-version invalidation path (per-path version bumps), so
   ``QueryService`` callers and the admission controller pick up
   corrected plans transparently, exactly as they do after
   ``update_statistics``.

Every decision (published, skipped, adopted, kept) is a decision card
on the controller; :meth:`FeedbackController.dump_decisions` writes
them as JSON lines for offline audit (the CI feedback-stress job
uploads this log as an artifact).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..obs.bus import EventBus, ObsEvent
from .capture import capture_observations
from .store import FeedbackStore, FragmentFeedback


@dataclass(frozen=True)
class FeedbackConfig:
    """Tunables of the feedback loop.

    The defaults are deliberately conservative: corrections need a
    factor-2 estimation error to trigger at all, and a plan rewrite must
    strictly win under corrected statistics to be adopted.
    """

    #: Gate trigger: minimum q-error (max(e/a, a/e)) of a fragment's
    #: current estimate against its measured mean.
    qerror_threshold: float = 2.0
    #: Gate A: minimum number of recorded observations backing a
    #: correction before it may be published.
    min_observations: int = 1
    #: Gate B: the re-optimized plan's corrected cost must be below
    #: ``incumbent_corrected_cost * (1 - adoption_margin)``.
    adoption_margin: float = 0.0
    #: Observe-and-step automatically after every ``QueryService``
    #: execution (``execute``/``execute_many``).
    auto: bool = True
    #: When set, the store is loaded from this JSON file at controller
    #: construction (if it exists) and saved back after every capture
    #: and gate cycle, so learned statistics survive service restarts.
    persist_path: Optional[str] = None


@dataclass(frozen=True)
class FeedbackDecision:
    """One gate decision, in querytorque decision-card style.

    ``pathology`` names what was wrong, ``detection`` how it was
    measured, ``action`` what the gate did about it, and the numeric
    fields carry the calibration evidence the decision rests on.
    """

    #: "publish" / "skip_low_observations" / "adopt" / "keep".
    action: str
    #: What was wrong (misestimated fragment, candidate rewrite, ...).
    pathology: str
    #: The measurement that triggered the decision.
    detection: str
    #: Fragment fingerprint or cache-key fingerprint the card is about.
    subject: str = ""
    qerror: Optional[float] = None
    observations: int = 0
    corrected_rows: Optional[float] = None
    estimated_rows: Optional[float] = None
    old_cost: Optional[float] = None
    new_cost: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _finite(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return value if value == value and abs(value) != float("inf") else None


class FeedbackController:
    """Wires a :class:`FeedbackStore` into a ``QueryService``.

    Create via ``QueryService(..., feedback=FeedbackConfig(...))`` —
    the service owns the controller and (with ``auto``) drives it after
    every execution; it can also be driven manually::

        controller.observe_run(run)   # capture one run's measurements
        controller.step()             # gate + publish + re-optimize
    """

    def __init__(self, service, config: Optional[FeedbackConfig] = None,
                 bus: Optional[EventBus] = None):
        self.service = service
        self.config = config or FeedbackConfig()
        path = self.config.persist_path
        if path and os.path.exists(path):
            self.store = FeedbackStore.load(path)
        else:
            self.store = FeedbackStore()
        self.bus = bus if bus is not None else service.bus
        self._lock = threading.Lock()
        self.decisions: List[FeedbackDecision] = []
        #: Runs observed / corrections published / plans adopted / kept.
        self.counters: Dict[str, int] = {
            "runs_observed": 0,
            "observations": 0,
            "published": 0,
            "skipped_low_observations": 0,
            "reoptimized": 0,
            "adopted": 0,
            "kept": 0,
        }

    # -- capture -----------------------------------------------------------

    def observe_run(self, run) -> int:
        """Record one executed run's fragment measurements.

        Accepts a :class:`repro.service.ServiceRun` or
        :class:`repro.service.BatchRun` (anything with ``submit``,
        ``stage_graph`` and ``metrics``).  Sequential runs carry no
        stage graph and contribute nothing.
        """
        memo = run.submit.result.details.plan_memo
        observations = capture_observations(memo, run.stage_graph,
                                            run.metrics)
        recorded = self.store.record(observations)
        with self._lock:
            self.counters["runs_observed"] += 1
            self.counters["observations"] += recorded
        self.bus.publish(ObsEvent.make(
            "stats.feedback.capture",
            observations=recorded,
            fragments=len(observations),
        ))
        self._maybe_persist()
        return recorded

    # -- gate + publish + re-optimize --------------------------------------

    def step(self) -> List[FeedbackDecision]:
        """Run one gate cycle; returns the decision cards it produced."""
        candidates = self.store.candidates(self.config.qerror_threshold)
        passed: List[FragmentFeedback] = []
        cards: List[FeedbackDecision] = []
        for entry in candidates:
            if entry.observations >= self.config.min_observations:
                passed.append(entry)
                continue
            card = FeedbackDecision(
                action="skip_low_observations",
                pathology="misestimated fragment",
                detection=(
                    f"q-error {entry.current_qerror:.2f} >= "
                    f"{self.config.qerror_threshold:.2f} but only "
                    f"{entry.observations} observation(s) < "
                    f"{self.config.min_observations}"
                ),
                subject=entry.fingerprint,
                qerror=_finite(entry.current_qerror),
                observations=entry.observations,
                estimated_rows=entry.last_estimated,
                corrected_rows=entry.mean_actual,
            )
            cards.append(card)
            with self._lock:
                self.counters["skipped_low_observations"] += 1
        if passed:
            for entry in passed:
                cards.append(FeedbackDecision(
                    action="publish",
                    pathology="misestimated fragment",
                    detection=(
                        f"q-error {entry.current_qerror:.2f} >= "
                        f"{self.config.qerror_threshold:.2f} over "
                        f"{entry.observations} observation(s)"
                    ),
                    subject=entry.fingerprint,
                    qerror=_finite(entry.current_qerror),
                    observations=entry.observations,
                    estimated_rows=entry.last_estimated,
                    corrected_rows=entry.mean_actual,
                ))
            with self._lock:
                self.counters["published"] += len(passed)
            cards.extend(self.service.apply_corrections(self.store, passed))
        self._record(cards)
        self._maybe_persist()
        return cards

    # -- bookkeeping --------------------------------------------------------

    def _maybe_persist(self) -> None:
        if self.config.persist_path:
            self.store.save(self.config.persist_path)

    def note_reoptimization(self, adopted: bool) -> None:
        with self._lock:
            self.counters["reoptimized"] += 1
            self.counters["adopted" if adopted else "kept"] += 1

    def _record(self, cards: List[FeedbackDecision]) -> None:
        with self._lock:
            self.decisions.extend(cards)
        for card in cards:
            self.bus.publish(ObsEvent.make(
                "stats.feedback.decision", **{
                    k: v for k, v in card.as_dict().items() if v is not None
                }
            ))

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            snapshot = dict(self.counters)
        snapshot.update(self.store.stats.as_dict())
        snapshot["corrections_active"] = len(self.store.active())
        snapshot["corrections_version"] = self.store.active().version
        return snapshot

    def dump_decisions(self, path: str) -> int:
        """Write the decision log as JSON lines; returns the card count."""
        with self._lock:
            cards = list(self.decisions)
        with open(path, "w", encoding="utf-8") as fh:
            for card in cards:
                fh.write(json.dumps(card.as_dict(), sort_keys=True) + "\n")
        return len(cards)
