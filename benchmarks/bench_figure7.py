"""Figure 7 — estimated costs, conventional vs CSE-exploiting optimizer.

The paper's headline result: 21–57% lower estimated costs across S1–S4
and the two large real-world scripts.  This bench regenerates the table
(printed with ``-s``), asserts the reproduction bands, and times the
optimization of each script.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.workloads.figure7 import (
    PAPER_RATIOS,
    format_table,
    run_all,
    run_script,
)
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_catalog

#: Tolerated absolute deviation of our cost ratio from the paper's.
#: S3/S4 carry a wider band: their ratios depend on how heavy the join
#: side of the script is in SCOPE's (unpublished) production cost model;
#: see EXPERIMENTS.md.
RATIO_TOLERANCE = {
    "S1": 0.05,
    "S2": 0.05,
    "S3": 0.10,
    "S4": 0.15,
    "LS1": 0.05,
    "LS2": 0.05,
}


@pytest.mark.parametrize("script", ["S1", "S2", "S3", "S4", "LS1", "LS2"])
def test_figure7_ratio_in_band(script):
    row = run_script(script)
    assert row.cse_cost < row.conventional_cost, script
    deviation = abs(row.ratio - row.paper_ratio)
    assert deviation <= RATIO_TOLERANCE[script], (
        f"{script}: ratio {row.ratio:.2f} vs paper {row.paper_ratio:.2f}"
    )


def test_figure7_savings_band_21_to_57_percent_extremes():
    """The paper's summary sentence: 21 to 57% lower estimated costs."""
    rows = run_all()
    savings = {row.script: row.saving_pct for row in rows}
    assert min(savings.values()) >= 15.0
    assert savings["LS1"] == min(savings.values())  # smallest saving
    assert savings["S4"] == max(savings.values())   # deepest saving
    # The paper's qualitative ordering: S2 and S4 save the most of the
    # small scripts, LS1 the least overall.
    assert savings["S4"] > savings["S1"]
    assert savings["S2"] > savings["S1"]


def test_print_figure7_table(capsys):
    rows = run_all()
    table = format_table(rows)
    with capsys.disabled():
        print("\n=== Figure 7 reproduction ===")
        print(table)


@pytest.mark.parametrize("script", ["S1", "S2", "S3", "S4"])
def test_bench_optimize_small_script(benchmark, script, figure_config):
    """Optimization time of S1–S4 (paper: under one second each)."""
    text = PAPER_SCRIPTS[script]

    def run():
        catalog = make_catalog()
        return optimize_script(text, catalog, figure_config, exploit_cse=True)

    result = benchmark(run)
    assert result.plan is not None


@pytest.mark.parametrize("script", ["LS1", "LS2"])
def test_bench_optimize_large_script(benchmark, script, figure_config):
    """Optimization time of the large scripts (paper budgets: 30s/60s)."""
    text, catalog, _spec = make_large_script(script)

    def run():
        return optimize_script(text, catalog, figure_config, exploit_cse=True)

    benchmark.pedantic(run, rounds=1, iterations=1)
