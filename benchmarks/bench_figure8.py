"""Figure 8 — plan shapes for script S1.

Conventional optimization (Figure 8(a)) duplicates the whole pipeline:
the input is extracted twice, pre-aggregated twice, and repartitioned
twice, on per-consumer column pairs.  The extended optimizer (Figure
8(b)) extracts once, repartitions once on the single column ``{B}``
(locally sub-optimal, globally optimal), materializes the shared
aggregate in a spool, and lets both consumers aggregate without any
further exchange.

This bench re-derives both plans, checks each structural claim, and
prints them with ``-s``.  The catalog uses a smaller grouping-key NDV
than the Figure 7 runs so the two-level (local + global) aggregation of
the paper's drawing is the cost-optimal shape.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.logical import GroupByMode
from repro.plan.physical import (
    PhysExtract,
    PhysHashAgg,
    PhysRepartition,
    PhysSort,
    PhysSpool,
    PhysStreamAgg,
)
from repro.workloads.paper_scripts import S1, make_catalog

#: Statistics under which the local-aggregation split pays off clearly
#: (grouping keys are selective relative to rows/machine).
FIG8_NDV = {"A": 40, "B": 40, "C": 40, "D": 1_000_000}


@pytest.fixture
def config():
    return OptimizerConfig(cost_params=CostParams(machines=25))


def optimize_both(config):
    catalog = make_catalog(ndv=FIG8_NDV)
    conventional = optimize_script(S1, catalog, config, exploit_cse=False)
    extended = optimize_script(S1, catalog, config, exploit_cse=True)
    return conventional, extended


def distinct_nodes(plan, op_type):
    return plan.find_all(op_type)


def reference_count(plan, target):
    """Number of edges pointing at ``target`` in the plan DAG."""
    count = 0
    for node in plan.iter_nodes():
        count += sum(1 for child in node.children if child is target)
    return count


class TestFigure8a:
    """The conventional plan: duplicated execution."""

    def test_no_sharing(self, config):
        conventional, _ = optimize_both(config)
        assert distinct_nodes(conventional.plan, PhysSpool) == []

    def test_pipeline_executed_per_consumer(self, config):
        conventional, _ = optimize_both(config)
        repartitions = distinct_nodes(conventional.plan, PhysRepartition)
        assert len(repartitions) == 2
        # Both repartitions hang over the same (identity-shared) winner
        # sub-plan — which, without a spool, the runtime re-executes per
        # consumer: the whole extract + pre-aggregate pipeline runs
        # twice (checked end-to-end in test_execution_equivalence).
        shared_child = repartitions[0].children[0]
        assert repartitions[1].children[0] is shared_child
        assert reference_count(conventional.plan, shared_child) == 2

    def test_per_consumer_repartition_columns(self, config):
        conventional, _ = optimize_both(config)
        repartitions = distinct_nodes(conventional.plan, PhysRepartition)
        col_sets = {frozenset(r.op.columns) for r in repartitions}
        # Figure 8(a): each pipeline repartitions on its own consumer's
        # key pair (the paper shows (B,A) and (C,B)).
        assert col_sets == {frozenset({"A", "B"}), frozenset({"B", "C"})}


class TestFigure8b:
    """The extended plan: shared execution with enforced properties."""

    def test_single_spool_with_two_consumers(self, config):
        _, extended = optimize_both(config)
        spools = distinct_nodes(extended.plan, PhysSpool)
        assert len(spools) == 1
        assert reference_count(extended.plan, spools[0]) == 2

    def test_single_repartition_on_single_column(self, config):
        _, extended = optimize_both(config)
        repartitions = distinct_nodes(extended.plan, PhysRepartition)
        assert len(repartitions) == 1
        # The globally optimal choice is a single-column subset that
        # satisfies both {A,B} and {B,C} — only {B} qualifies.
        assert frozenset(repartitions[0].op.columns) == frozenset({"B"})

    def test_local_aggregation_below_the_exchange(self, config):
        _, extended = optimize_both(config)
        repartition = distinct_nodes(extended.plan, PhysRepartition)[0]
        below = {
            type(node.op)
            for node in repartition.iter_nodes()
            if node is not repartition
        }
        assert below & {PhysStreamAgg, PhysHashAgg}, (
            "the paper's plan pre-aggregates before shipping data"
        )
        modes = {
            node.op.mode
            for node in repartition.iter_nodes()
            if isinstance(node.op, (PhysStreamAgg, PhysHashAgg))
        }
        assert GroupByMode.LOCAL in modes

    def test_consumers_need_no_further_exchange(self, config):
        _, extended = optimize_both(config)
        spool = distinct_nodes(extended.plan, PhysSpool)[0]
        for node in extended.plan.iter_nodes():
            if isinstance(node.op, PhysRepartition):
                # The only repartition sits BELOW the spool.
                assert any(n is node for n in spool.iter_nodes())

    def test_extended_cheaper(self, config):
        conventional, extended = optimize_both(config)
        assert extended.cost < conventional.cost


def test_print_figure8_plans(config, capsys):
    conventional, extended = optimize_both(config)
    with capsys.disabled():
        print("\n=== Figure 8(a): conventional plan for S1 ===")
        print(conventional.plan.pretty())
        print("=== Figure 8(b): plan exploiting the common subexpression ===")
        print(extended.plan.pretty())


class TestFigure8SortBased:
    """The paper's drawing is sort-based; with sort-friendly cost
    constants the optimizer reproduces it operator for operator."""

    @pytest.fixture
    def sort_config(self):
        return OptimizerConfig(
            cost_params=CostParams(machines=25, hash_row=50.0, sort_row=0.01)
        )

    def optimize(self, sort_config, exploit_cse):
        catalog = make_catalog(ndv=FIG8_NDV)
        return optimize_script(S1, catalog, sort_config,
                               exploit_cse=exploit_cse)

    def test_conventional_uses_per_consumer_key_orders(self, sort_config):
        result = self.optimize(sort_config, exploit_cse=False)
        from repro.plan.physical import PhysStreamAgg

        finals = [
            n.op.key_order
            for n in result.plan.iter_nodes()
            if isinstance(n.op, PhysStreamAgg)
            and n.op.mode is GroupByMode.FINAL
        ]
        # The paper's (B,A,C)/(C,B,A): each pipeline picks a key
        # permutation starting with its own consumer's keys.
        assert len(set(finals)) == 2

    def test_extended_consumer_resorts_spooled_result(self, sort_config):
        """Figure 8(b) steps (7)-(8): the left consumer aggregates the
        spool directly (prefix order), the right consumer re-sorts."""
        result = self.optimize(sort_config, exploit_cse=True)
        spool = result.plan.find_all(PhysSpool)[0]
        assert spool.props.sort_order.is_sorted
        consumers = [
            n
            for n in result.plan.iter_nodes()
            if any(c is spool for c in n.children)
        ]
        sorts = [n for n in consumers if isinstance(n.op, PhysSort)]
        direct = [n for n in consumers if isinstance(n.op, PhysStreamAgg)]
        assert sorts and direct, (
            "one consumer must read the spool order directly, the other "
            "must re-sort"
        )

    def test_extended_single_column_exchange(self, sort_config):
        result = self.optimize(sort_config, exploit_cse=True)
        repartitions = result.plan.find_all(PhysRepartition)
        assert len(repartitions) == 1
        assert frozenset(repartitions[0].op.columns) == frozenset({"B"})


def test_bench_figure8_reoptimization(benchmark, config):
    """Time of the full 4-step CSE pipeline on S1."""
    catalog = make_catalog(ndv=FIG8_NDV)

    def run():
        return optimize_script(S1, catalog, config, exploit_cse=True)

    result = benchmark(run)
    assert result.details.chosen_phase == 2
