"""Figure 3 — shared-group propagation and LCA identification.

Regenerates the three scenarios of Figure 3 (single shared group with
the root as LCA; per-pipeline LCAs; LCA above the lowest common
ancestor), prints the resulting annotations, and times Algorithm 3 on
memos from small to LS2-sized.
"""

from __future__ import annotations

import pytest

from repro.cse.fingerprint import identify_common_subexpressions
from repro.cse.propagation import propagate_shared_groups
from repro.optimizer.memo import Memo
from repro.scope.compiler import compile_script
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import S1, S3, make_catalog
from tests.test_propagation import FIG3C_SCRIPT


def prepared_memo(text, catalog):
    memo = Memo.from_logical_plan(compile_script(text, catalog))
    identify_common_subexpressions(memo)
    return memo


SCENARIOS = {
    "fig3a (S1: LCA at root)": S1,
    "fig3b (S3: LCA at each join)": S3,
    "fig3c (LCA above lowest common ancestor)": FIG3C_SCRIPT,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_propagation_identifies_lcas(name):
    memo = prepared_memo(SCENARIOS[name], make_catalog())
    result = propagate_shared_groups(memo)
    assert result.lca
    for shared_gid, lca_gid in result.lca.items():
        assert lca_gid is not None, f"{name}: no LCA for group {shared_gid}"
        # Every consumer must be below the LCA's shared-group record.
        record = next(
            s for s in result.shared_below[lca_gid] if s.grp_no == shared_gid
        )
        assert record.all_found()


def test_print_figure3_annotations(capsys):
    with capsys.disabled():
        print("\n=== Figure 3 reproduction: LCAs per scenario ===")
        for name, text in SCENARIOS.items():
            memo = prepared_memo(text, make_catalog())
            result = propagate_shared_groups(memo)
            lcas = {
                f"shared#{s}": f"LCA=group#{l}" for s, l in result.lca.items()
            }
            root_note = {
                s: ("root" if l == memo.root else "inner")
                for s, l in result.lca.items()
            }
            print(f"{name}: {lcas} ({root_note})")


@pytest.mark.parametrize("script", ["LS1", "LS2"])
def test_bench_propagation(benchmark, script):
    """Algorithm 3 runtime on the large memos (it is one DAG pass)."""
    text, catalog, _spec = make_large_script(script)
    memo = prepared_memo(text, catalog)

    def run():
        return propagate_shared_groups(memo)

    result = benchmark(run)
    expected = 4 if script == "LS1" else 17
    assert len(result.lca) == expected
