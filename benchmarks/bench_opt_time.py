"""Section IX timing claims — optimization cost and budgets.

The paper reports: S1–S4 optimize in under one second; LS1 and LS2 fit
30 s and 60 s budgets; the budget mechanism can stop the re-optimization
at an intermediate round and keep the best plan found so far; and the
optimization time is a small fraction of the (estimated) execution cost.
"""

from __future__ import annotations

import time

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_catalog


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_small_scripts_optimize_under_a_second(script, figure_config):
    start = time.perf_counter()
    optimize_script(PAPER_SCRIPTS[script], make_catalog(), figure_config)
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, f"{script} took {elapsed:.2f}s (paper: <1s)"


@pytest.mark.parametrize("script,budget", [("LS1", 30.0), ("LS2", 60.0)])
def test_large_scripts_fit_paper_budgets(script, budget):
    text, catalog, _spec = make_large_script(script)
    config = OptimizerConfig(
        cost_params=CostParams(machines=25), budget_seconds=budget
    )
    start = time.perf_counter()
    result = optimize_script(text, catalog, config)
    elapsed = time.perf_counter() - start
    assert result.plan is not None
    assert elapsed < budget + 10.0


def test_budget_interrupts_rounds_and_keeps_best():
    text, catalog, _spec = make_large_script("LS1")
    tight = OptimizerConfig(
        cost_params=CostParams(machines=25), max_rounds=3
    )
    loose = OptimizerConfig(cost_params=CostParams(machines=25))
    limited = optimize_script(text, catalog, tight)
    full = optimize_script(text, catalog, loose)
    assert limited.details.engine.stats.rounds <= 3
    assert limited.plan is not None
    # The budget-limited plan is valid and no better than the full sweep.
    assert limited.cost >= full.cost * (1 - 1e-9)


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_bench_small_script_optimization(benchmark, script, figure_config):
    text = PAPER_SCRIPTS[script]
    result = benchmark(
        lambda: optimize_script(text, make_catalog(), figure_config)
    )
    assert result.plan is not None


def test_bench_ls1_end_to_end(benchmark):
    text, catalog, _spec = make_large_script("LS1")
    config = OptimizerConfig(
        cost_params=CostParams(machines=25), budget_seconds=30.0
    )
    benchmark.pedantic(
        lambda: optimize_script(text, catalog, config), rounds=1, iterations=1
    )
