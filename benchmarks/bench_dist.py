"""Thread vs process runtime on a CPU-bound filter/agg workload.

The claim of the distributed-runtime PR, measured: on a CPU-bound
filter/agg pipeline at ``WORKERS`` workers, the multiprocess scheduler
must finish at least ``SPEEDUP_FLOOR``x faster than the thread
scheduler — same plan, same cluster, byte-identical outputs, and the
run-scoped spill directory fully cleaned up afterwards.

Where the win comes from (and why it holds even on a single core):

* **per-worker heap isolation** — the thread scheduler executes every
  task in one shared interpreter heap, so each gen-2 garbage collection
  rescans *all* resident cluster data, including datasets the query
  never touches (``resident.log`` below models the usual cloud cluster
  that hosts far more data than one query reads).  Forked workers
  ``gc.freeze()`` the inherited heap and collect only their task-local
  allocations.
* **serialized exchanges** — the process runtime ships compact columnar
  wire blobs through the spill directory, while the thread scheduler
  pays the ``to_row``/``to_backend`` conversion shims at every vertex
  commit and cut input.

On multi-core CI runners the process runtime additionally gets real
parallelism across the 4-way-partitioned stages, which the GIL denies
the thread scheduler; the floor below is set from single-core runs and
is therefore conservative.

Raw numbers land in ``BENCH_dist.json`` next to this file::

    pytest benchmarks/bench_dist.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.api import optimize_script
from repro.exec import Cluster, ProcessScheduler, TaskScheduler
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.workloads.datagen import generate_for_catalog

MACHINES = 4
WORKERS = 8
ROWS = 300_000
RESIDENT_ROWS = 4_000_000
BEST_OF = 3
SPEEDUP_FLOOR = 2.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_dist.json"

#: Ten-column extract, a selective filter, then a cascade of grouped
#: aggregations whose key sets shrink stage by stage — CPU-bound from
#: the first vertex to the last, with a wide intermediate crossing the
#: one exchange boundary.
WORKLOAD = """
R0 = EXTRACT A,B,C,D,E,F,G,H,I,J FROM "wide.log" USING LogExtractor;
RF = SELECT A,B,C,D,E,F,G,H,I,J FROM R0 WHERE G < 170;
S1 = SELECT A,B,C,D,E,F,G,H,Sum(I) AS SI,Sum(J) AS SJ FROM RF GROUP BY A,B,C,D,E,F,G,H;
S2 = SELECT B,C,D,E,F,G,H,Sum(SI) AS I2,Sum(SJ) AS J2 FROM S1 GROUP BY B,C,D,E,F,G,H;
S3 = SELECT C,D,E,F,G,Sum(I2) AS I3,Sum(J2) AS J3 FROM S2 GROUP BY C,D,E,F,G;
S4 = SELECT D,E,Sum(I3) AS I4,Sum(J3) AS J4 FROM S3 GROUP BY D,E;
S5 = SELECT D,Sum(I4) AS I5,Count(*) AS N5 FROM S4 GROUP BY D;
OUTPUT S5 TO "s5.out";
"""

WIDE_COLUMNS = ("A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
WIDE_NDV = {
    "A": 5_000, "B": 2_000, "C": 500, "D": 50_000, "E": 10_000,
    "F": 1_000, "G": 200, "H": 25_000, "I": 4_000, "J": 100_000,
}


def _make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "wide.log",
        [(name, ColumnType.INT) for name in WIDE_COLUMNS],
        rows=ROWS,
        ndv=WIDE_NDV,
    )
    # Resident but unqueried: the shared-heap thread runtime still pays
    # garbage-collection scans over it on every collection; the forked
    # workers freeze it out of their collector entirely.
    catalog.register_file(
        "resident.log",
        [(name, ColumnType.INT) for name in ("J", "K", "L", "M")],
        rows=RESIDENT_ROWS,
        ndv={"J": 100_000, "K": 50, "L": 9_000, "M": 70_000},
    )
    return catalog


def _best_of(fn, repeats=BEST_OF):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_process_runtime_is_2x_faster(capsys):
    catalog = _make_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    plan = optimize_script(WORKLOAD, catalog, config).plan
    files = generate_for_catalog(catalog, seed=1)

    def make_cluster():
        cluster = Cluster(machines=MACHINES)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        return cluster

    timings = {}
    outputs = {}
    spill_paths = []
    for label, scheduler_cls in (
        ("thread", TaskScheduler),
        ("process", ProcessScheduler),
    ):

        def run(cls=scheduler_cls, label=label):
            scheduler = cls(
                make_cluster(), workers=WORKERS, validate=False,
                backend="columnar",
            )
            outputs[label] = scheduler.execute(plan)
            if cls is ProcessScheduler:
                spill_paths.append(scheduler.spill.path)

        run()  # warm-up: page cache, fork machinery
        timings[label] = _best_of(run)

    # The speedup only counts if the bytes are identical.
    assert set(outputs["thread"]) == set(outputs["process"])
    for path in outputs["thread"]:
        assert (
            outputs["thread"][path].canonical_bytes()
            == outputs["process"][path].canonical_bytes()
        ), f"output {path} differs between runtimes"
    # Exactly-once bookkeeping: every successful run removed its spill.
    for spill_path in spill_paths:
        assert not os.path.exists(spill_path), spill_path

    speedup = timings["thread"] / timings["process"]
    report = {
        "benchmark": "dist_runtime",
        "machines": MACHINES,
        "workers": WORKERS,
        "rows": ROWS,
        "resident_rows": RESIDENT_ROWS,
        "best_of": BEST_OF,
        "speedup_floor": SPEEDUP_FLOOR,
        "thread_seconds": timings["thread"],
        "process_seconds": timings["process"],
        "speedup": speedup,
    }
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[report["benchmark"]] = report
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print(f"\n=== Thread vs process runtime "
              f"({ROWS:,} rows + {RESIDENT_ROWS:,} resident, "
              f"{WORKERS} workers, best of {BEST_OF}) ===")
        header = f"{'runtime':<10}{'seconds':>9}"
        print(header)
        print("-" * len(header))
        print(f"{'thread':<10}{timings['thread']:>9.3f}")
        print(f"{'process':<10}{timings['process']:>9.3f}")
        print(f"speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")
        print(f"-> {OUT_PATH.name}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"process runtime only {speedup:.2f}x faster "
        f"(floor {SPEEDUP_FLOOR:.1f}x)"
    )
