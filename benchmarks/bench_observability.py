"""Tracing overhead: traced vs untraced optimize + execute.

The observability subsystem promises near-zero cost: the null tracer is
a no-op singleton and span call sites live only at stage boundaries.
This benchmark runs each paper script end to end (optimize + execute on
the scheduler) with the tracer off and on, asserts the traced geomean
overhead stays under 10%, and writes the raw numbers to
``BENCH_observability.json`` next to this file for trend tracking::

    pytest benchmarks/bench_observability.py -s
"""

from __future__ import annotations

import json
import math
import pathlib
import time

from repro.api import execute_script
from repro.obs import Tracer
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_exec_catalog

MACHINES = 4
WORKERS = 2
REPEATS = 3
OVERHEAD_BUDGET = 0.10
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_observability.json"


def _run_once(script, catalog, config, files, traced):
    tracer = Tracer() if traced else None
    start = time.perf_counter()
    kwargs = {"tracer": tracer} if tracer is not None else {}
    result = execute_script(
        PAPER_SCRIPTS[script], catalog, config, machines=MACHINES,
        workers=WORKERS, files=files, validate=False, **kwargs,
    )
    elapsed = time.perf_counter() - start
    assert result.outputs
    if traced:
        assert tracer.root is not None and tracer.root.name == "run"
    return elapsed


def _best_of(script, catalog, config, files, traced):
    return min(
        _run_once(script, catalog, config, files, traced)
        for _ in range(REPEATS)
    )


def test_traced_overhead_under_budget(capsys):
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)

    rows = []
    for script in sorted(PAPER_SCRIPTS):
        untraced = _best_of(script, catalog, config, files, traced=False)
        traced = _best_of(script, catalog, config, files, traced=True)
        rows.append({
            "script": script,
            "untraced_seconds": untraced,
            "traced_seconds": traced,
            "overhead": traced / untraced - 1.0,
        })

    geomean = math.exp(
        sum(math.log(r["traced_seconds"] / r["untraced_seconds"])
            for r in rows) / len(rows)
    ) - 1.0
    report = {
        "benchmark": "observability_overhead",
        "machines": MACHINES,
        "workers": WORKERS,
        "repeats": REPEATS,
        "budget": OVERHEAD_BUDGET,
        "geomean_overhead": geomean,
        "scripts": rows,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== Tracing overhead (best of "
              f"{REPEATS}, workers={WORKERS}) ===")
        header = (f"{'script':<8}{'untraced s':>12}{'traced s':>12}"
                  f"{'overhead':>10}")
        print(header)
        print("-" * len(header))
        for r in rows:
            print(f"{r['script']:<8}{r['untraced_seconds']:>12.3f}"
                  f"{r['traced_seconds']:>12.3f}"
                  f"{r['overhead'] * 100:>9.1f}%")
        print(f"geomean overhead: {geomean * 100:.1f}% "
              f"(budget {OVERHEAD_BUDGET * 100:.0f}%) "
              f"-> {OUT_PATH.name}")

    assert geomean < OVERHEAD_BUDGET, (
        f"tracing overhead {geomean:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget; see {OUT_PATH}"
    )
