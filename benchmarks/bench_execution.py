"""Measured counterpart of Figure 7 — simulated-cluster execution.

The paper evaluates estimated costs only; as additional validation we
*execute* the conventional and CSE plans on the cluster simulator and
compare measured work: rows extracted, rows shipped through exchanges,
rows spooled.  The CSE plans must extract each shared input once and
ship no more data than the conventional plans.

The scheduler benchmarks additionally time the task-parallel vertex
scheduler against the sequential executor (workers 1/4/8) and measure
the wall-time overhead of fault-injected retries.  Speedups are
*measured and reported*, not asserted: operator evaluation is pure
Python, so GIL-bound threads mostly overlap bookkeeping, not compute.
"""

from __future__ import annotations

import time

import pytest

from repro.api import optimize_script
from repro.exec import (
    Cluster,
    FaultInjection,
    PlanExecutor,
    RetryPolicy,
    TaskScheduler,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import (
    EXEC_NDV,
    PAPER_SCRIPTS,
    make_exec_catalog,
)

MACHINES = 4


def _make_cluster(files):
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    return cluster


def execute(script, exploit_cse):
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    result = optimize_script(
        PAPER_SCRIPTS[script], catalog, config, exploit_cse=exploit_cse
    )
    cluster = _make_cluster(files)
    executor = PlanExecutor(cluster, validate=True)
    executor.execute(result.plan)
    return executor.metrics, result


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_cse_does_not_increase_measured_work(script):
    base, _ = execute(script, exploit_cse=False)
    cse, _ = execute(script, exploit_cse=True)
    assert cse.rows_extracted <= base.rows_extracted
    assert cse.rows_shuffled <= base.rows_shuffled


def test_print_measured_table(capsys):
    with capsys.disabled():
        print("\n=== Measured execution (4-machine simulator) ===")
        header = (
            f"{'script':<8}{'mode':<14}{'extracted':>11}{'shuffled':>10}"
            f"{'spooled':>9}{'reads':>7}"
        )
        print(header)
        print("-" * len(header))
        for script in sorted(PAPER_SCRIPTS):
            for cse in (False, True):
                metrics, _ = execute(script, cse)
                mode = "cse" if cse else "conventional"
                print(
                    f"{script:<8}{mode:<14}{metrics.rows_extracted:>11,}"
                    f"{metrics.rows_shuffled:>10,}{metrics.rows_spooled:>9,}"
                    f"{metrics.spool_reads:>7}"
                )


@pytest.mark.parametrize("script", ["S1", "S4"])
@pytest.mark.parametrize("cse", [False, True], ids=["conventional", "cse"])
def test_bench_plan_execution(benchmark, script, cse):
    """Wall time of executing the plans on the simulator."""
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    result = optimize_script(
        PAPER_SCRIPTS[script], catalog, config, exploit_cse=cse
    )

    def run():
        cluster = Cluster(machines=MACHINES)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=False)
        return executor.execute(result.plan)

    outputs = benchmark(run)
    assert outputs


def _timed_run(plan, files, workers, failure_rate=0.0):
    """One execution, returning (wall seconds, retries, outputs)."""
    cluster = _make_cluster(files)
    if workers == 0:
        executor = PlanExecutor(cluster, validate=False)
    else:
        executor = TaskScheduler(
            cluster,
            workers=workers,
            validate=False,
            faults=FaultInjection(rate=failure_rate, seed=7),
            retry=RetryPolicy(max_retries=8, backoff=0.0),
        )
    start = time.perf_counter()
    outputs = executor.execute(plan)
    elapsed = time.perf_counter() - start
    return elapsed, executor.metrics.task_retries, outputs


def test_print_scheduler_speedup_table(capsys):
    """Sequential vs parallel wall time, plus retry overhead."""
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    with capsys.disabled():
        print("\n=== Scheduler wall time (seconds; best of 3) ===")
        header = (
            f"{'script':<8}{'sequential':>11}{'w=1':>8}{'w=4':>8}"
            f"{'w=8':>8}{'speedup(8)':>11}{'faulty w=4':>11}{'retries':>8}"
        )
        print(header)
        print("-" * len(header))
        for script in sorted(PAPER_SCRIPTS):
            result = optimize_script(
                PAPER_SCRIPTS[script], catalog, config, exploit_cse=True
            )
            times = {}
            for workers in (0, 1, 4, 8):
                times[workers] = min(
                    _timed_run(result.plan, files, workers)[0]
                    for _ in range(3)
                )
            faulty, retries, outputs = _timed_run(
                result.plan, files, workers=4, failure_rate=0.1
            )
            clean = _timed_run(result.plan, files, workers=4)[2]
            assert {
                p: d.sorted_rows() for p, d in outputs.items()
            } == {p: d.sorted_rows() for p, d in clean.items()}
            print(
                f"{script:<8}{times[0]:>11.3f}{times[1]:>8.3f}"
                f"{times[4]:>8.3f}{times[8]:>8.3f}"
                f"{times[0] / times[8]:>10.2f}x"
                f"{faulty:>11.3f}{retries:>8}"
            )


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_bench_scheduler_execution(benchmark, workers):
    """Wall time of the vertex scheduler on the heaviest paper script."""
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    result = optimize_script(
        PAPER_SCRIPTS["S4"], catalog, config, exploit_cse=True
    )

    def run():
        cluster = _make_cluster(files)
        executor = TaskScheduler(cluster, workers=workers, validate=False)
        return executor.execute(result.plan)

    outputs = benchmark(run)
    assert outputs
