"""Measured counterpart of Figure 7 — simulated-cluster execution.

The paper evaluates estimated costs only; as additional validation we
*execute* the conventional and CSE plans on the cluster simulator and
compare measured work: rows extracted, rows shipped through exchanges,
rows spooled.  The CSE plans must extract each shared input once and
ship no more data than the conventional plans.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import (
    EXEC_NDV,
    PAPER_SCRIPTS,
    make_exec_catalog,
)

MACHINES = 4


def execute(script, exploit_cse):
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    result = optimize_script(
        PAPER_SCRIPTS[script], catalog, config, exploit_cse=exploit_cse
    )
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)
    executor = PlanExecutor(cluster, validate=True)
    executor.execute(result.plan)
    return executor.metrics, result


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_cse_does_not_increase_measured_work(script):
    base, _ = execute(script, exploit_cse=False)
    cse, _ = execute(script, exploit_cse=True)
    assert cse.rows_extracted <= base.rows_extracted
    assert cse.rows_shuffled <= base.rows_shuffled


def test_print_measured_table(capsys):
    with capsys.disabled():
        print("\n=== Measured execution (4-machine simulator) ===")
        header = (
            f"{'script':<8}{'mode':<14}{'extracted':>11}{'shuffled':>10}"
            f"{'spooled':>9}{'reads':>7}"
        )
        print(header)
        print("-" * len(header))
        for script in sorted(PAPER_SCRIPTS):
            for cse in (False, True):
                metrics, _ = execute(script, cse)
                mode = "cse" if cse else "conventional"
                print(
                    f"{script:<8}{mode:<14}{metrics.rows_extracted:>11,}"
                    f"{metrics.rows_shuffled:>10,}{metrics.rows_spooled:>9,}"
                    f"{metrics.spool_reads:>7}"
                )


@pytest.mark.parametrize("script", ["S1", "S4"])
@pytest.mark.parametrize("cse", [False, True], ids=["conventional", "cse"])
def test_bench_plan_execution(benchmark, script, cse):
    """Wall time of executing the plans on the simulator."""
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=11)
    result = optimize_script(
        PAPER_SCRIPTS[script], catalog, config, exploit_cse=cse
    )

    def run():
        cluster = Cluster(machines=MACHINES)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=False)
        return executor.execute(result.plan)

    outputs = benchmark(run)
    assert outputs
