"""Row vs columnar backend throughput on filter/agg-heavy workloads.

The claim of the columnar PR, measured: on scan-dominated scripts at
100k+ input rows, the vectorized columnar backend must execute at least
``SPEEDUP_FLOOR``x faster than the row backend — same plans, same
cluster, byte-identical outputs.  Two workload shapes are timed:

* **filter_project** — cascaded selective filters plus computed
  projections, where the row backend pays a full expression-tree walk
  per row and the columnar backend runs compiled per-batch loops;
* **filter_agg** — filter into a two-level grouped aggregation, where
  vectorized grouping replaces per-row ``accumulate`` dispatch.

Raw numbers land in ``BENCH_columnar.json`` next to this file::

    pytest benchmarks/bench_columnar.py -s
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.api import optimize_script
from repro.exec import Cluster, get_backend
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import make_exec_catalog

MACHINES = 4
ROWS = 120_000
BEST_OF = 3
SPEEDUP_FLOOR = 3.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_columnar.json"

WORKLOADS = {
    "filter_project": """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A,B,C,D FROM R0 WHERE D > 350 AND B > 2 AND A > 1;
P = SELECT A,B,C+D AS E,D-C AS G FROM F;
Q = SELECT A,B,E,G FROM P WHERE E > 400 OR G > 100;
OUTPUT Q TO "filtered.out";
""",
    "filter_agg": """
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
F = SELECT A,B,C,D FROM R0 WHERE D > 100 AND C > 1;
G = SELECT A,B,Sum(D) AS S,Min(C) AS MN,Max(C) AS MX,Count(*) AS N
    FROM F GROUP BY A,B;
H = SELECT A,Sum(S) AS T,Count(*) AS K FROM G GROUP BY A;
OUTPUT H TO "agg.out";
""",
}


def _best_of(fn, repeats=BEST_OF):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_columnar_backend_is_3x_faster(capsys):
    catalog = make_exec_catalog(rows=ROWS)
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=1, rows_override=ROWS)
    cluster = Cluster(machines=MACHINES)
    for path, rows in files.items():
        cluster.load_file(path, rows)

    results = []
    for name, text in sorted(WORKLOADS.items()):
        plan = optimize_script(text, catalog, config).plan

        timings = {}
        outputs = {}
        for backend in ("row", "columnar"):
            executor_cls = get_backend(backend).executor_cls

            def run(cls=executor_cls):
                executor = cls(cluster, validate=False)
                outputs[backend] = executor.execute(plan)

            run()  # warm-up: kernel compilation, caches
            timings[backend] = _best_of(run)

        # The speedup only counts if the bytes are identical.
        assert set(outputs["row"]) == set(outputs["columnar"])
        for path in outputs["row"]:
            assert (
                outputs["row"][path].canonical_bytes()
                == outputs["columnar"][path].canonical_bytes()
            ), f"{name}: output {path} differs between backends"

        results.append({
            "workload": name,
            "row_seconds": timings["row"],
            "columnar_seconds": timings["columnar"],
            "speedup": timings["row"] / timings["columnar"],
        })

    report = {
        "benchmark": "columnar_backend",
        "machines": MACHINES,
        "rows": ROWS,
        "best_of": BEST_OF,
        "speedup_floor": SPEEDUP_FLOOR,
        "workloads": results,
    }
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[report["benchmark"]] = report
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print(f"\n=== Row vs columnar backend "
              f"({ROWS:,} rows, best of {BEST_OF}) ===")
        header = (f"{'workload':<16}{'row s':>9}{'columnar s':>12}"
                  f"{'speedup':>9}")
        print(header)
        print("-" * len(header))
        for r in results:
            print(f"{r['workload']:<16}{r['row_seconds']:>9.3f}"
                  f"{r['columnar_seconds']:>12.3f}"
                  f"{r['speedup']:>8.1f}x")
        print(f"-> {OUT_PATH.name}")

    for r in results:
        assert r["speedup"] >= SPEEDUP_FLOOR, (
            f"{r['workload']}: columnar only "
            f"{r['speedup']:.2f}x faster (floor {SPEEDUP_FLOOR:.0f}x)"
        )
