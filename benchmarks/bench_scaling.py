"""Optimizer scaling: cost of the CSE pipeline vs script size.

Generates scripts from a few dozen operators up to LS2 size (1034) and
measures optimization time, group counts, candidate counts, and phase-2
rounds.  The paper's scalability claim is indirect (LS2 finishes within
a 60 s budget); this bench characterizes where the time goes.
"""

from __future__ import annotations

import time

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.large_scripts import (
    LargeScriptSpec,
    build_catalog,
    build_script,
)


def sized_spec(pipelines: int) -> LargeScriptSpec:
    """A spec with ``pipelines`` shared pipelines of fixed shape."""
    return LargeScriptSpec(
        name=f"scale{pipelines}",
        shared_consumers=tuple([2] * pipelines),
        pre_chain=tuple([3] * pipelines),
        unshared_chains=tuple([4] * pipelines),
    )


def optimize(spec: LargeScriptSpec):
    text = build_script(spec)
    catalog = build_catalog(spec)
    config = OptimizerConfig(cost_params=CostParams(machines=25))
    start = time.perf_counter()
    result = optimize_script(text, catalog, config)
    elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.mark.parametrize("pipelines", [2, 4, 8])
def test_scaling_is_roughly_linear_in_pipelines(pipelines):
    spec = sized_spec(pipelines)
    result, elapsed = optimize(spec)
    stats = result.details.engine.stats
    # Independent pipelines: rounds grow linearly, not multiplicatively.
    assert stats.rounds <= pipelines * 8
    assert result.plan is not None


def test_print_scaling_table(capsys):
    with capsys.disabled():
        print("\n=== Optimizer scaling (shared+unshared pipelines) ===")
        print(f"{'pipelines':>10}{'operators':>11}{'groups opt':>12}"
              f"{'rounds':>8}{'time':>8}")
        for pipelines in (2, 4, 8, 16):
            spec = sized_spec(pipelines)
            result, elapsed = optimize(spec)
            stats = result.details.engine.stats
            print(f"{pipelines:>10}{spec.operator_count():>11}"
                  f"{stats.groups_optimized:>12}{stats.rounds:>8}"
                  f"{elapsed:>7.2f}s")


@pytest.mark.parametrize("pipelines", [4, 16])
def test_bench_pipeline_scaling(benchmark, pipelines):
    spec = sized_spec(pipelines)
    text = build_script(spec)
    catalog = build_catalog(spec)
    config = OptimizerConfig(cost_params=CostParams(machines=25))
    benchmark.pedantic(
        lambda: optimize_script(text, catalog, config), rounds=1, iterations=1
    )
