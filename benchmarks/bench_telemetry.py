"""Telemetry overhead benchmark.

The claim of the PR, measured: attaching a
:class:`~repro.obs.MetricsCollector` to a ``QueryService`` — the full
EventBus publish path plus labeled counter/histogram updates — must
cost less than ``OVERHEAD_CEILING`` (5%) of end-to-end wall time on a
repeated shared-heavy workload.

Both arms run the identical script sequence against identical
services; we take the best of ``REPEATS`` interleaved passes per arm
so scheduler noise cancels instead of accumulating.  Raw numbers land
in ``BENCH_telemetry.json`` next to this file::

    pytest benchmarks/bench_telemetry.py -s
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.obs import MetricsCollector
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.service import QueryService
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

PASSES = 6
REPEATS = 3
WORKERS = 2
ROWS = 6_000
OVERHEAD_CEILING = 0.05
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_telemetry.json"

WORKLOAD = ["S1", "S2", "S3", "S4"]


def _make_service(*, metrics) -> QueryService:
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    ndv = {"A": 7, "B": 5, "C": 6, "D": 50}
    catalog.register_file("test.log", columns, rows=ROWS, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=ROWS, ndv=ndv)
    return QueryService(
        catalog, OptimizerConfig(cost_params=CostParams(machines=4)),
        metrics=metrics,
    )


def _time_pass(service, texts, files) -> float:
    start = time.perf_counter()
    for _ in range(PASSES):
        for text in texts:
            service.execute(text, workers=WORKERS, files=files,
                            validate=False)
    return time.perf_counter() - start


def test_metrics_collector_overhead_under_5_percent(capsys):
    texts = [PAPER_SCRIPTS[name] for name in WORKLOAD]

    plain = _make_service(metrics=False)
    measured = _make_service(metrics=True)
    files = generate_for_catalog(plain.catalog, seed=11)

    # Warm both plan caches so neither arm pays one-off optimizer cost.
    for text in texts:
        plain.execute(text, workers=WORKERS, files=files, validate=False)
        measured.execute(text, workers=WORKERS, files=files,
                         validate=False)

    # Interleave the arms and keep the best repeat of each: transient
    # load hits both arms alike and min() discards it.
    plain_times, measured_times = [], []
    for _ in range(REPEATS):
        plain_times.append(_time_pass(plain, texts, files))
        measured_times.append(_time_pass(measured, texts, files))

    plain_best = min(plain_times)
    measured_best = min(measured_times)
    overhead = measured_best / plain_best - 1.0

    # The collector really observed the measured arm.
    assert isinstance(measured.metrics_collector, MetricsCollector)
    snapshot = measured.metrics_snapshot()
    assert snapshot["metrics"]["repro_exec_rows_total"]["samples"]

    total = len(texts) * (1 + PASSES * REPEATS)
    report = {
        "benchmark": "telemetry_overhead",
        "passes": PASSES,
        "repeats": REPEATS,
        "workers": WORKERS,
        "rows": ROWS,
        "scripts": WORKLOAD,
        "executions_per_arm": total,
        "overhead_ceiling": OVERHEAD_CEILING,
        "plain": {
            "wall_seconds": plain_times,
            "best_seconds": plain_best,
        },
        "measured": {
            "wall_seconds": measured_times,
            "best_seconds": measured_best,
        },
        "overhead": overhead,
    }
    _merge_report(report)

    with capsys.disabled():
        print(f"\n=== Telemetry overhead "
              f"({PASSES} passes x {len(texts)} scripts, "
              f"best of {REPEATS}) ===")
        print(f"plain:    {plain_best:6.3f}s  {plain_times}")
        print(f"measured: {measured_best:6.3f}s  {measured_times}")
        print(f"overhead: {overhead * 100:+.2f}% "
              f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)")
        print(f"-> {OUT_PATH.name}")

    assert overhead < OVERHEAD_CEILING, (
        f"metrics collection costs {overhead * 100:.2f}% "
        f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )


def _merge_report(section: dict) -> None:
    """Accumulate sections into one BENCH_telemetry.json."""
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[section["benchmark"]] = section
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
