"""Streaming-admission throughput benchmark.

The claim of the PR, measured: with concurrent clients submitting a
shared-heavy workload, the windowed admission front-end (in-window
dedup + cross-script CSE batches) must sustain at least
``SPEEDUP_FLOOR``x the scripts/sec of the same clients calling
``QueryService.execute`` one-at-a-time.

Raw numbers land in ``BENCH_admission.json`` next to this file::

    pytest benchmarks/bench_admission.py -s
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.scope.catalog import Catalog
from repro.service import AdmissionConfig, AdmissionController, QueryService
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS

CLIENTS = 8
PASSES = 2
WORKERS = 2
ROWS = 6_000
WINDOW_SECONDS = 0.005
SPEEDUP_FLOOR = 2.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_admission.json"

#: Shared-heavy stream: every client submits the same scripts, so each
#: window dedups ~CLIENTS copies down to 3 distinct DAGs which then
#: share subexpressions with each other.
WORKLOAD = {
    "S1": PAPER_SCRIPTS["S1"],
    "S2": PAPER_SCRIPTS["S2"],
    "S4": PAPER_SCRIPTS["S4"],
    "S1x": PAPER_SCRIPTS["S1"].replace("R0", "Z0").replace("R1", "Z1")
                              .replace("R2", "Z2"),
}


def _make_service() -> QueryService:
    catalog = Catalog()
    columns = [(name, ColumnType.INT) for name in ("A", "B", "C", "D")]
    ndv = {"A": 7, "B": 5, "C": 6, "D": 50}
    catalog.register_file("test.log", columns, rows=ROWS, ndv=ndv)
    catalog.register_file("test2.log", columns, rows=ROWS, ndv=ndv)
    return QueryService(
        catalog, OptimizerConfig(cost_params=CostParams(machines=4))
    )


def _run_clients(worker) -> float:
    """Run CLIENTS threads through ``worker(client_id)``; wall seconds."""
    errors = []

    def body(cid: int) -> None:
        try:
            worker(cid)
        except BaseException as exc:  # noqa: BLE001 - fail the bench
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(cid,))
               for cid in range(CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client raised: {errors[0]!r}"
    return elapsed


def test_streaming_admission_at_least_2x_one_at_a_time(capsys):
    texts = [WORKLOAD[name] for name in sorted(WORKLOAD)]
    total = CLIENTS * PASSES * len(texts)

    # Baseline: the same clients call execute() one script at a time
    # against one shared service (its plan cache is warm after the
    # first pass — the admission side gets no optimizer advantage).
    direct_service = _make_service()
    files = generate_for_catalog(direct_service.catalog, seed=11)

    def direct_client(cid: int) -> None:
        for _ in range(PASSES):
            for text in texts:
                direct_service.execute(text, workers=WORKERS, files=files,
                                       validate=False)

    direct_seconds = _run_clients(direct_client)

    # Streaming admission: same clients, same scripts, one controller.
    admitted_service = _make_service()
    controller = AdmissionController(
        admitted_service, files=files, workers=WORKERS, validate=False,
        config=AdmissionConfig(window=WINDOW_SECONDS, max_pending=4096),
    )

    def admitted_client(cid: int) -> None:
        for _ in range(PASSES):
            for text in texts:
                controller.submit(text, tenant=f"t{cid}", timeout=300)

    with controller:
        admitted_seconds = _run_clients(admitted_client)

    snap = controller.stats_snapshot()
    direct_rate = total / direct_seconds
    admitted_rate = total / admitted_seconds
    speedup = admitted_rate / direct_rate

    report = {
        "benchmark": "streaming_admission_throughput",
        "clients": CLIENTS,
        "passes": PASSES,
        "workers": WORKERS,
        "rows": ROWS,
        "window_seconds": WINDOW_SECONDS,
        "scripts": sorted(WORKLOAD),
        "total_submissions": total,
        "speedup_floor": SPEEDUP_FLOOR,
        "direct": {
            "wall_seconds": direct_seconds,
            "scripts_per_second": direct_rate,
        },
        "admitted": {
            "wall_seconds": admitted_seconds,
            "scripts_per_second": admitted_rate,
            "windows": snap["windows"],
            "deduped": snap["deduped"],
            "executed_scripts": snap["executed_scripts"],
            "shared_vertices": snap["shared_vertices"],
        },
        "speedup": speedup,
    }
    _merge_report(report)

    with capsys.disabled():
        print(f"\n=== Streaming admission vs one-at-a-time "
              f"({CLIENTS} clients x {PASSES} passes x "
              f"{len(texts)} scripts) ===")
        print(f"direct:   {direct_seconds:6.2f}s  "
              f"{direct_rate:6.1f} scripts/s")
        print(f"admitted: {admitted_seconds:6.2f}s  "
              f"{admitted_rate:6.1f} scripts/s  "
              f"({snap['windows']} windows, {snap['deduped']} deduped, "
              f"{snap['executed_scripts']} executed, "
              f"{snap['shared_vertices']} shared vertices)")
        print(f"speedup:  {speedup:.2f}x (floor {SPEEDUP_FLOOR:.0f}x)")
        print(f"-> {OUT_PATH.name}")

    assert snap["deduped"] > 0, (
        "a shared-heavy stream must dedup identical in-window scripts"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"streaming admission only {speedup:.2f}x one-at-a-time "
        f"(floor {SPEEDUP_FLOOR:.0f}x)"
    )


def _merge_report(section: dict) -> None:
    """Accumulate sections into one BENCH_admission.json."""
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[section["benchmark"]] = section
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
