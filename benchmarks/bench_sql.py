"""Shared-execution benchmark for the SQL frontend's star-join corpus.

The claim, measured: batching SQL queries that state the same CTE
verbatim (q02/q07 both define ``band_sales``) must process at least 25%
fewer rows than running them independently, while producing
*byte-identical* per-query outputs.  ``rows_processed`` counts every
materialization point (extracts, exchanges, spools, outputs) — the
measured analogue of the cost model's volume terms.

A second, wider batch (five queries with overlapping but
differently-pruned fact-table scans) is measured and *reported* without
a floor: column pruning makes each query's extract structurally
distinct, so cross-query sharing there is limited to identical
subtrees.  The report keeps that number visible rather than silently
restricting the benchmark to the favourable case.

Raw numbers land in ``BENCH_sql.json`` next to this file::

    pytest benchmarks/bench_sql.py -s
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.api import execute_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import QueryService
from repro.workloads.starjoin import STARJOIN_QUERIES, make_starjoin_catalog

MACHINES = 4
WORKERS = 2
REDUCTION_FLOOR = 0.25
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_sql.json"

#: The CTE pair: q02 and q07 spell ``band_sales`` verbatim, so the
#: batch spools the fact-dimension join + aggregation once for both.
CTE_PAIR = ["q02_band_revenue", "q07_band_units"]

#: The wide batch: overlapping reads, but per-query column pruning
#: leaves few identical subtrees to merge.  Reported, not asserted.
WIDE_BATCH = [
    "q01_item_channels",
    "q02_band_revenue",
    "q03_star_filter",
    "q07_band_units",
    "q09_big_spenders",
]


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def _measure(catalog, files, names):
    texts = [STARJOIN_QUERIES[name] for name in names]
    service = QueryService(catalog, _config())
    start = time.perf_counter()
    batch = service.execute_many(texts, workers=WORKERS, files=files,
                                 validate=False)
    batch_seconds = time.perf_counter() - start

    independent_rows = 0
    independent_makespan = 0.0
    solo_outputs = []
    start = time.perf_counter()
    for text in texts:
        solo = execute_script(text, catalog, _config(), workers=WORKERS,
                              files=files, validate=False)
        independent_rows += solo.metrics.rows_processed()
        independent_makespan += solo.metrics.simulated_makespan
        solo_outputs.append(
            {p: ds.sorted_rows() for p, ds in solo.outputs.items()}
        )
    independent_seconds = time.perf_counter() - start

    # Correctness first: batching must not change a single output row.
    for name, outputs, solo in zip(names, batch.outputs, solo_outputs):
        batched = {p: ds.sorted_rows() for p, ds in outputs.items()}
        assert batched == solo, f"{name}: batched outputs differ"

    batch_rows = batch.metrics.rows_processed()
    return {
        "queries": list(names),
        "batched": {
            "wall_seconds": batch_seconds,
            "rows_processed": batch_rows,
            "simulated_makespan": batch.metrics.simulated_makespan,
            "shared_vertices": [v.name for v in batch.shared_vertices()],
        },
        "independent": {
            "wall_seconds": independent_seconds,
            "rows_processed": independent_rows,
            "simulated_makespan": independent_makespan,
        },
        "rows_processed_reduction": 1.0 - batch_rows / independent_rows,
    }


def test_batched_cte_pair_processes_fewer_rows(capsys):
    catalog, files = make_starjoin_catalog()
    pair = _measure(catalog, files, CTE_PAIR)
    wide = _measure(catalog, files, WIDE_BATCH)

    report = {
        "benchmark": "sql_starjoin_batch",
        "machines": MACHINES,
        "workers": WORKERS,
        "reduction_floor": REDUCTION_FLOOR,
        "cte_pair": pair,
        "wide_batch": wide,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print("\n=== SQL star-join: batched vs independent ===")
        for label, section in [("CTE pair", pair), ("wide batch", wide)]:
            b = section["batched"]
            i = section["independent"]
            print(f"{label} ({len(section['queries'])} queries): "
                  f"rows {b['rows_processed']:,} vs "
                  f"{i['rows_processed']:,}  "
                  f"({section['rows_processed_reduction']:.1%} reduction, "
                  f"{len(b['shared_vertices'])} shared vertices)")
        print(f"-> {OUT_PATH.name}")

    assert pair["batched"]["shared_vertices"], (
        "the q02+q07 batch must contain shared vertices"
    )
    reduction = pair["rows_processed_reduction"]
    assert reduction >= REDUCTION_FLOOR, (
        f"batched CTE pair only cut rows processed by {reduction:.1%} "
        f"(floor {REDUCTION_FLOOR:.0%}); the verbatim CTE is being "
        "recomputed per query"
    )
    # The wide batch must at least never *lose* shared work entirely.
    assert wide["batched"]["shared_vertices"], (
        "the wide batch must still share the q02/q07 CTE"
    )
