"""Ablations of the design decisions DESIGN.md calls out.

* **History expansion cap** (decision 3): capping the Section V range
  expansion bounds phase-2 rounds on wide grouping keys while keeping
  the full upper bound available.
* **DAG-aware costing** (decision 4): comparing round candidates by
  tree cost instead of DAG cost makes sharing invisible and phase 2
  pointless — demonstrated by measuring both costings on the same plan.
* **Cost-based sharing** (decision 7): with the pass-through alternative
  disabled conceptually (tiny intermediates), the spool would be forced;
  the optimizer instead recomputes cheap shared results.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostModel, CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.columns import ColumnType
from repro.plan.physical import PhysPassThrough, PhysSpool
from repro.scope.catalog import Catalog
from repro.workloads.paper_scripts import make_catalog

WIDE_KEY_SCRIPT = """
R0 = EXTRACT A,B,C,D,E,F FROM "wide.log" USING LogExtractor;
R = SELECT A,B,C,D,E,Sum(F) AS S FROM R0 GROUP BY A,B,C,D,E;
R1 = SELECT A,B,C,D,Sum(S) AS S1 FROM R GROUP BY A,B,C,D;
R2 = SELECT B,C,D,E,Sum(S) AS S2 FROM R GROUP BY B,C,D,E;
OUTPUT R1 TO "r1.out";
OUTPUT R2 TO "r2.out";
"""


def wide_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_file(
        "wide.log",
        [(c, ColumnType.INT) for c in ("A", "B", "C", "D", "E", "F")],
        rows=50_000_000,
        ndv={c: 30 for c in "ABCDE"} | {"F": 100_000},
    )
    return catalog


class TestHistoryCapAblation:
    def run(self, cap):
        config = OptimizerConfig(
            cost_params=CostParams(machines=25), history_max_subset=cap
        )
        return optimize_script(WIDE_KEY_SCRIPT, wide_catalog(), config)

    def test_cap_bounds_rounds(self):
        capped = self.run(cap=1)
        uncapped = self.run(cap=None)
        assert capped.details.engine.stats.rounds < \
            uncapped.details.engine.stats.rounds

    def test_cap_keeps_most_of_the_benefit(self):
        """The singleton subsets + the full key set already contain the
        reconciling layouts, so a tight cap loses little."""
        capped = self.run(cap=1)
        uncapped = self.run(cap=None)
        assert capped.cost <= uncapped.cost * 1.10

    def test_print_cap_table(self, capsys):
        with capsys.disabled():
            print("\n=== History-cap ablation (4-column grouping keys) ===")
            print(f"{'cap':>6}{'rounds':>8}{'cost':>18}")
            for cap in (1, 2, 3, None):
                result = self.run(cap)
                label = "none" if cap is None else str(cap)
                print(f"{label:>6}{result.details.engine.stats.rounds:>8}"
                      f"{result.cost:>18,.0f}")


class TestDagCostingAblation:
    def test_tree_cost_blind_to_sharing(self):
        """The same CSE plan priced as a tree looks barely better (or
        worse) than the baseline — DAG-aware costing is what lets the
        rounds see the benefit of sharing."""
        from repro.workloads.paper_scripts import S1

        catalog = make_catalog()
        config = OptimizerConfig(cost_params=CostParams(machines=25))
        base = optimize_script(S1, catalog, config, exploit_cse=False)
        ext = optimize_script(S1, catalog, config, exploit_cse=True)
        model = CostModel(config.cost_params)
        tree = ext.plan.cost  # tree cost counts the spool per consumer
        dag = model.dag_cost(ext.plan)
        assert dag < tree
        assert dag < base.cost
        assert tree > base.cost * 0.95  # tree costing sees ~no benefit


class TestCostBasedSharingAblation:
    def test_tiny_intermediate_recomputed(self, capsys):
        """With a trivially cheap shared subexpression the optimizer
        prefers recomputation (pass-through) over materialization."""
        catalog = Catalog()
        catalog.register_file(
            "small.log",
            [("A", ColumnType.INT), ("B", ColumnType.INT)],
            rows=500,
            ndv={"A": 5, "B": 5},
        )
        text = (
            'X = EXTRACT A,B FROM "small.log" USING E;\n'
            "Y = SELECT A,B FROM X WHERE B > 1;\n"
            "P = SELECT A,Sum(B) AS S FROM Y GROUP BY A;\n"
            "Q = SELECT B,Sum(A) AS S FROM Y GROUP BY B;\n"
            'OUTPUT P TO "p";\nOUTPUT Q TO "q";'
        )
        config = OptimizerConfig(cost_params=CostParams(machines=4))
        result = optimize_script(text, catalog, config)
        passthroughs = result.plan.find_all(PhysPassThrough)
        spools = result.plan.find_all(PhysSpool)
        assert passthroughs or not spools, (
            "a 500-row intermediate should not be materialized"
        )

    def test_large_intermediate_materialized(self):
        result = optimize_script(
            WIDE_KEY_SCRIPT,
            wide_catalog(),
            OptimizerConfig(cost_params=CostParams(machines=25)),
        )
        assert result.plan.find_all(PhysSpool), (
            "an expensive shared pipeline must be materialized"
        )


@pytest.mark.parametrize("cap", [1, None], ids=["cap1", "uncapped"])
def test_bench_history_cap(benchmark, cap):
    config = OptimizerConfig(
        cost_params=CostParams(machines=25), history_max_subset=cap
    )
    result = benchmark(
        lambda: optimize_script(WIDE_KEY_SCRIPT, wide_catalog(), config)
    )
    assert result.plan is not None
