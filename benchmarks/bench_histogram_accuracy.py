"""Selectivity-estimation accuracy: histograms vs the magic constant.

For three distributions (uniform, Zipf-skewed, exponential-ish retail
quantities) and a sweep of range predicates, compare the true fraction
of qualifying rows against the histogram estimate and the 1/3 default.
The histogram's mean absolute error should be an order of magnitude
smaller on skewed data.
"""

from __future__ import annotations

import random

import pytest

from repro.plan.expressions import BinaryOp
from repro.scope.histogram import Histogram
from repro.workloads.datagen import generate_rows, generate_skewed_rows

N_ROWS = 4_000
DOMAIN = 500


def uniform_values(seed=1):
    rows = generate_rows(["X"], N_ROWS, {"X": DOMAIN}, seed=seed)
    return [row["X"] for row in rows]


def zipf_values(seed=1):
    rows = generate_skewed_rows(["X"], N_ROWS, {"X": DOMAIN}, seed=seed)
    return [row["X"] for row in rows]


def exponential_values(seed=1):
    rng = random.Random(seed)
    return [min(int(rng.expovariate(0.02)), DOMAIN - 1) for _ in range(N_ROWS)]


DISTRIBUTIONS = {
    "uniform": uniform_values,
    "zipf": zipf_values,
    "exponential": exponential_values,
}

PROBES = [10, 25, 50, 100, 200, 350, 450]


def errors(values):
    hist = Histogram.from_values(values)
    hist_err = []
    default_err = []
    for probe in PROBES:
        true = sum(1 for v in values if v > probe) / len(values)
        estimate = hist.selectivity(BinaryOp.GT, probe)
        hist_err.append(abs(estimate - true))
        default_err.append(abs(1 / 3 - true))
    return (
        sum(hist_err) / len(hist_err),
        sum(default_err) / len(default_err),
    )


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_histogram_beats_default(name):
    values = DISTRIBUTIONS[name]()
    hist_mae, default_mae = errors(values)
    assert hist_mae < 0.03
    assert hist_mae < default_mae


def test_skew_makes_the_default_catastrophic():
    _hist_mae, default_mae = errors(zipf_values())
    assert default_mae > 0.15  # the magic constant is off by >15 points


def test_print_accuracy_table(capsys):
    with capsys.disabled():
        print("\n=== Range-selectivity estimation error (mean abs) ===")
        print(f"{'distribution':<14}{'histogram':>12}{'1/3 default':>13}")
        for name in sorted(DISTRIBUTIONS):
            hist_mae, default_mae = errors(DISTRIBUTIONS[name]())
            print(f"{name:<14}{hist_mae:>12.4f}{default_mae:>13.4f}")


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_bench_histogram_build(benchmark, name):
    values = DISTRIBUTIONS[name]()
    hist = benchmark(lambda: Histogram.from_values(values))
    assert len(hist) > 1
