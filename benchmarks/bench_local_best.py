"""Three-way comparison: conventional vs local-best sharing vs phase 2.

The paper's Section I argues that prior multi-query-optimization work
([10]–[12]) — which shares common subexpressions but picks the shared
plan's *locally* optimal physical properties — "will not consistently
generate the best global plan".  This bench quantifies that argument on
the paper's own scripts: local-best sharing recovers most of the benefit
of sharing, and the cost-based phase 2 closes the remaining gap by
reconciling the consumers' competing partitioning requirements.
"""

from __future__ import annotations

import pytest

from repro.cse.pipeline import (
    optimize_conventional,
    optimize_local_best,
    optimize_with_cse,
)
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.pruning import prune_columns
from repro.scope.compiler import compile_script
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_catalog


def all_three(script: str):
    config = OptimizerConfig(cost_params=CostParams(machines=25))
    catalog = make_catalog()
    logical = prune_columns(compile_script(PAPER_SCRIPTS[script], catalog))
    return (
        optimize_conventional(logical, catalog, config),
        optimize_local_best(logical, catalog, config),
        optimize_with_cse(logical, catalog, config),
    )


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_ordering_conventional_local_costbased(script):
    conventional, local, full = all_three(script)
    assert local.cost <= conventional.cost * (1 + 1e-9)
    assert full.cost <= local.cost * (1 + 1e-9)


def test_s1_gap_is_the_consumer_compensation():
    """On S1 the local layout serves only one consumer; the other pays a
    compensation step the cost-based layout avoids."""
    conventional, local, full = all_three("S1")
    assert full.cost < local.cost
    gap = local.cost - full.cost
    saving = conventional.cost - full.cost
    assert 0 < gap < saving  # the gap is real but smaller than sharing


def test_print_three_way_table(capsys):
    with capsys.disabled():
        print("\n=== Sharing strategies on the paper's scripts ===")
        header = (
            f"{'script':<8}{'conventional':>16}{'local-best':>16}"
            f"{'cost-based':>16}{'local ratio':>12}{'CSE ratio':>11}"
        )
        print(header)
        print("-" * len(header))
        for script in sorted(PAPER_SCRIPTS):
            conventional, local, full = all_three(script)
            print(
                f"{script:<8}{conventional.cost:>16,.0f}{local.cost:>16,.0f}"
                f"{full.cost:>16,.0f}"
                f"{local.cost / conventional.cost:>12.2f}"
                f"{full.cost / conventional.cost:>11.2f}"
            )


@pytest.mark.parametrize(
    "strategy", ["conventional", "local-best", "cost-based"]
)
def test_bench_strategies_on_s1(benchmark, strategy):
    config = OptimizerConfig(cost_params=CostParams(machines=25))
    catalog = make_catalog()
    logical = prune_columns(compile_script(PAPER_SCRIPTS["S1"], catalog))
    runner = {
        "conventional": optimize_conventional,
        "local-best": optimize_local_best,
        "cost-based": optimize_with_cse,
    }[strategy]
    result = benchmark(lambda: runner(logical, catalog, config))
    assert result.plan is not None
