"""Section VIII-B/C ablations — ranking shared groups and property sets.

Under a tight round budget, ranking shared groups by repartitioning
savings and property sets by phase-1 win frequency should evaluate the
promising rounds first: the budget-limited search finds plans at least
as good as the unranked one, usually with fewer rounds spent before the
eventual winner is first seen.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.large_scripts import make_large_script
from repro.workloads.paper_scripts import S2, S3, make_catalog


def run(text, catalog, *, rank: bool, max_rounds=None):
    config = OptimizerConfig(
        cost_params=CostParams(machines=25),
        rank_shared_groups=rank,
        rank_properties=rank,
        max_rounds=max_rounds,
    )
    return optimize_script(text, catalog, config)


@pytest.mark.parametrize("budget", [1, 2, 4, 8])
def test_ranked_never_worse_under_budget(budget):
    text, catalog, _spec = make_large_script("LS1")
    ranked = run(text, catalog, rank=True, max_rounds=budget)
    unranked = run(text, catalog, rank=False, max_rounds=budget)
    assert ranked.cost <= unranked.cost * (1 + 1e-9)


def test_unlimited_budget_rank_independent():
    """Ranking only reorders the sweep; with enough budget the result
    is identical."""
    for text in (S2, S3):
        ranked = run(text, make_catalog(), rank=True)
        unranked = run(text, make_catalog(), rank=False)
        assert ranked.cost == pytest.approx(unranked.cost, rel=1e-9)


def first_round_reaching_best(result):
    """Index of the first round whose enforcement equals the winner's."""
    engine = result.details.engine
    best_cost = result.cost
    # Re-evaluate each logged round's plan cost is not recorded; instead
    # use the round log order and the final winner's layouts.
    return len(engine.stats.round_log)


def test_print_ablation_table(capsys):
    text, catalog, _spec = make_large_script("LS1")
    rows = []
    for budget in (1, 2, 4, 8, None):
        ranked = run(text, catalog, rank=True, max_rounds=budget)
        unranked = run(text, catalog, rank=False, max_rounds=budget)
        rows.append((budget, ranked.cost, unranked.cost))
    with capsys.disabled():
        print("\n=== Section VIII-B/C ablation (LS1, cost vs round budget) ===")
        print(f"{'budget':>8}{'ranked':>18}{'unranked':>18}{'gain':>8}")
        for budget, ranked_cost, unranked_cost in rows:
            label = "∞" if budget is None else str(budget)
            gain = (unranked_cost - ranked_cost) / unranked_cost * 100
            print(f"{label:>8}{ranked_cost:>18,.0f}{unranked_cost:>18,.0f}"
                  f"{gain:>7.1f}%")


@pytest.mark.parametrize("rank", [True, False], ids=["ranked", "unranked"])
def test_bench_budgeted_optimization(benchmark, rank):
    text, catalog, _spec = make_large_script("LS1")
    result = benchmark(lambda: run(text, catalog, rank=rank, max_rounds=4))
    assert result.plan is not None
