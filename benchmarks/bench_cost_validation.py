"""Cost-model validation: estimated ratios vs simulated makespan ratios.

The paper evaluates *estimated* costs only; this bench closes the loop
by executing the plans on the cluster simulator and comparing two
ratios per script:

* estimated:  cost(CSE plan) / cost(conventional plan);
* simulated:  makespan(CSE plan) / makespan(conventional plan),

where the makespan model charges the slowest partition per compute
operator and the full volume per exchange.  The cost model is validated
if the CSE plan also *runs* faster in every case and the two ratios
agree in direction.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.exec import Cluster, PlanExecutor
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_exec_catalog

MACHINES = 4


def measure(script: str):
    catalog = make_exec_catalog()
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    files = generate_for_catalog(catalog, seed=47)
    outcomes = {}
    for label, exploit in (("conventional", False), ("cse", True)):
        result = optimize_script(
            PAPER_SCRIPTS[script], catalog, config, exploit_cse=exploit
        )
        cluster = Cluster(machines=MACHINES)
        for path, rows in files.items():
            cluster.load_file(path, rows)
        executor = PlanExecutor(cluster, validate=True)
        executor.execute(result.plan)
        outcomes[label] = (result.cost, executor.metrics.simulated_makespan)
    est_ratio = outcomes["cse"][0] / outcomes["conventional"][0]
    sim_ratio = outcomes["cse"][1] / outcomes["conventional"][1]
    return est_ratio, sim_ratio


@pytest.mark.parametrize("script", sorted(PAPER_SCRIPTS))
def test_cse_also_wins_in_simulation(script):
    est_ratio, sim_ratio = measure(script)
    assert est_ratio < 1.0
    assert sim_ratio < 1.0, (
        f"{script}: estimated win ({est_ratio:.2f}) did not materialize "
        f"in simulation ({sim_ratio:.2f})"
    )


def test_estimated_and_simulated_orderings_agree():
    """Ranking the four scripts by estimated saving should broadly match
    the simulated ranking (rank correlation > 0)."""
    est, sim = {}, {}
    for script in PAPER_SCRIPTS:
        est[script], sim[script] = measure(script)
    est_rank = sorted(est, key=est.get)
    sim_rank = sorted(sim, key=sim.get)
    # Spearman-ish: count pairwise agreements.
    agree = 0
    total = 0
    names = list(PAPER_SCRIPTS)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            total += 1
            if (est[a] < est[b]) == (sim[a] < sim[b]):
                agree += 1
    assert agree / total >= 0.5


def test_print_validation_table(capsys):
    with capsys.disabled():
        print("\n=== Cost-model validation (estimated vs simulated) ===")
        print(f"{'script':<8}{'estimated ratio':>17}{'simulated ratio':>17}")
        for script in sorted(PAPER_SCRIPTS):
            est_ratio, sim_ratio = measure(script)
            print(f"{script:<8}{est_ratio:>17.2f}{sim_ratio:>17.2f}")


@pytest.mark.parametrize("script", ["S1"])
def test_bench_simulated_execution(benchmark, script):
    result = benchmark(lambda: measure(script))
    assert result[0] < 1.0
