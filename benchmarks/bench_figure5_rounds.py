"""Figure 5 / Section VIII-A — independent shared groups.

The paper's example: two independent shared groups with 8 property sets
each need 15 rounds under the extended round generation instead of the
64 of the cartesian baseline.  This bench checks the arithmetic, then
measures the real effect on a script with two independent shared groups
(round counts and wall time, with identical final plan cost).
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.cse.large_scripts import cartesian_rounds, sequential_rounds
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.workloads.paper_scripts import make_catalog
from tests.test_propagation import INDEPENDENT_SCRIPT


def test_paper_arithmetic_8x8():
    assert cartesian_rounds([8, 8]) == 64
    assert sequential_rounds([8, 8]) == 15


def run(independence: bool):
    config = OptimizerConfig(
        cost_params=CostParams(machines=25),
        exploit_independence=independence,
    )
    return optimize_script(INDEPENDENT_SCRIPT, make_catalog(), config)


def test_independence_reduces_rounds_without_quality_loss():
    fast = run(independence=True)
    slow = run(independence=False)
    fast_rounds = fast.details.engine.stats.rounds
    slow_rounds = slow.details.engine.stats.rounds
    assert fast_rounds < slow_rounds
    assert fast.cost == pytest.approx(slow.cost, rel=1e-9)
    # With histories of size n1, n2 the counts must be exactly
    # n1 + n2 - 1 versus n1 * n2.
    memo = fast.details.memo
    sizes = sorted(
        len(g.history) for g in memo.shared_groups() if g.history
    )
    assert fast_rounds == sequential_rounds(sizes)
    assert slow_rounds == cartesian_rounds(sizes)


def test_print_round_comparison(capsys):
    fast = run(True)
    slow = run(False)
    with capsys.disabled():
        print("\n=== Figure 5 reproduction: rounds with independent groups ===")
        print(f"cartesian  : {slow.details.engine.stats.rounds} rounds, "
              f"cost {slow.cost:,.0f}")
        print(f"independent: {fast.details.engine.stats.rounds} rounds, "
              f"cost {fast.cost:,.0f}")
        print(f"paper example: 8×8 histories → "
              f"{cartesian_rounds([8, 8])} vs {sequential_rounds([8, 8])}")


@pytest.mark.parametrize("independence", [True, False],
                         ids=["independent", "cartesian"])
def test_bench_round_strategies(benchmark, independence):
    result = benchmark(lambda: run(independence))
    assert result.plan is not None
