"""Figure 4 — re-optimization rounds under property enforcement.

Scenario (a): two shared groups with *different* LCAs → each LCA sweeps
only its own group's property sets (2 + 2 rounds in the paper's
example).  Scenario (b): one LCA for two *dependent* shared groups → the
full cartesian product (4 rounds in the paper's example).

The bench reruns both shapes, checks the round structure, prints the
round logs, and times phase 2.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.workloads.paper_scripts import S3, make_catalog
from tests.test_propagation import CROSS_JOIN_SCRIPT


def rounds_by_lca(result):
    per_lca = {}
    for lca, signature in result.details.engine.stats.round_log:
        per_lca.setdefault(lca, []).append(signature)
    return per_lca


class TestFigure4a:
    def test_independent_lcas_sweep_separately(self, figure_config):
        result = optimize_script(S3, make_catalog(), figure_config)
        per_lca = rounds_by_lca(result)
        assert len(per_lca) == 2
        for signatures in per_lca.values():
            assert all(len(sig) == 1 for sig in signatures)


class TestFigure4b:
    def test_single_lca_cartesian(self, figure_config):
        result = optimize_script(CROSS_JOIN_SCRIPT, make_catalog(),
                                 figure_config)
        per_lca = rounds_by_lca(result)
        assert len(per_lca) == 1
        signatures = next(iter(per_lca.values()))
        assert all(len(sig) == 2 for sig in signatures)
        shared = sorted({g for sig in signatures for g, _ in sig})
        memo = result.details.memo
        expected = 1
        for gid in shared:
            expected *= len(memo.group(gid).history)
        assert len(signatures) == expected


def test_print_figure4_round_logs(figure_config, capsys):
    with capsys.disabled():
        for name, text in (("4(a) S3", S3), ("4(b) cross joins",
                                             CROSS_JOIN_SCRIPT)):
            result = optimize_script(text, make_catalog(), figure_config)
            print(f"\n=== Figure {name}: phase-2 rounds ===")
            for lca, signature in result.details.engine.stats.round_log:
                pretty = ", ".join(f"({g},{e})" for g, e in signature)
                print(f"  LCA group#{lca}: {{{pretty}}}")


@pytest.mark.parametrize(
    "name,text", [("fig4a", S3), ("fig4b", CROSS_JOIN_SCRIPT)]
)
def test_bench_enforced_reoptimization(benchmark, figure_config, name, text):
    def run():
        return optimize_script(text, make_catalog(), figure_config)

    result = benchmark(run)
    assert result.details.engine.stats.rounds > 0
