"""Cardinality-feedback benchmark: the headline claim, measured.

Two claims from the PR, with raw numbers written to
``BENCH_feedback.json`` next to this file:

* **Headline** — on the skewed filter workload whose seed statistics
  misprice the shared-filter spool decision, one feedback cycle must
  cut rows processed by at least ``REDUCTION_FLOOR`` (30%), and the
  corrected plan must serve from the plan cache.
* **Adversarial gate-block** — the same skew observed only once under a
  ``min_observations=3`` policy must NOT rewrite the plan: Gate A
  records a ``skip_low_observations`` card and rows processed stay
  identical run over run.

Run with::

    pytest benchmarks/bench_feedback.py -s
"""

from __future__ import annotations

import json
import pathlib

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import QueryService
from repro.stats.feedback import FeedbackConfig
from repro.workloads.skew import SKEW_SCENARIOS

MACHINES = 4
WORKERS = 2
ROUNDS = 2
REDUCTION_FLOOR = 0.30
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_feedback.json"


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def _drive(name: str):
    """Run a skew scenario for ROUNDS rounds; (runs, service)."""
    scenario = SKEW_SCENARIOS[name]
    service = QueryService(
        scenario.build_catalog(), _config(),
        feedback=FeedbackConfig(**scenario.feedback),
    )
    files = scenario.generate_files()
    runs = [
        service.execute(scenario.script, workers=WORKERS, files=files)
        for _ in range(ROUNDS)
    ]
    return runs, service


def test_feedback_cuts_rows_processed_at_least_30pct(capsys):
    runs, service = _drive("filter_selectivity_skew")
    before = runs[0].metrics.rows_processed()
    after = runs[-1].metrics.rows_processed()
    reduction = 1.0 - after / before
    actions = [card.action for card in service.feedback.decisions]
    counters = service.feedback.stats_snapshot()

    report = {
        "benchmark": "feedback_rows_processed",
        "scenario": "filter_selectivity_skew",
        "machines": MACHINES,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "rows_processed_before": before,
        "rows_processed_after": after,
        "reduction": reduction,
        "reduction_floor": REDUCTION_FLOOR,
        "decisions": actions,
        "corrections_published": counters["published"],
        "plans_adopted": counters["adopted"],
        "served_from_cache": runs[-1].submit.cache_hit,
    }
    _merge_report(report)

    with capsys.disabled():
        print(f"\n=== Feedback headline (filter_selectivity_skew, "
              f"{MACHINES} machines) ===")
        print(f"rows processed: {before} -> {after} "
              f"({reduction:.1%} reduction, floor "
              f"{REDUCTION_FLOOR:.0%})")
        print(f"decisions: {actions}")
        print(f"-> {OUT_PATH.name}")

    assert "adopt" in actions, "the gate must adopt the corrected plan"
    assert runs[-1].submit.cache_hit, (
        "the corrected plan must serve from the cache"
    )
    assert reduction >= REDUCTION_FLOOR, (
        f"feedback only cut rows processed by {reduction:.1%} "
        f"(floor {REDUCTION_FLOOR:.0%})"
    )


def test_gate_blocks_adoption_on_thin_evidence(capsys):
    runs, service = _drive("gate_refusal_low_observations")
    before = runs[0].metrics.rows_processed()
    after = runs[-1].metrics.rows_processed()
    actions = [card.action for card in service.feedback.decisions]
    counters = service.feedback.stats_snapshot()

    report = {
        "benchmark": "feedback_gate_block",
        "scenario": "gate_refusal_low_observations",
        "machines": MACHINES,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "min_observations": (
            SKEW_SCENARIOS["gate_refusal_low_observations"]
            .feedback["min_observations"]
        ),
        "rows_processed_before": before,
        "rows_processed_after": after,
        "decisions": actions,
        "corrections_published": counters["published"],
        "plans_adopted": counters["adopted"],
    }
    _merge_report(report)

    with capsys.disabled():
        print(f"\n=== Feedback gate block "
              f"(gate_refusal_low_observations) ===")
        print(f"rows processed: {before} -> {after} (must be equal)")
        print(f"decisions: {actions}")
        print(f"-> {OUT_PATH.name}")

    assert "skip_low_observations" in actions, (
        "Gate A must record its refusal"
    )
    assert "adopt" not in actions, (
        "the gate adopted a plan on thin evidence"
    )
    assert counters["published"] == 0
    assert after == before, (
        f"plan changed despite the gate block: {before} -> {after}"
    )


def _merge_report(section: dict) -> None:
    """Accumulate sections into one BENCH_feedback.json."""
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[section["benchmark"]] = section
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
