"""Plan-cache and shared-batch-execution benchmarks for the query service.

Two claims of the PR, measured:

* **Warm vs cold submit** — a plan-cache hit must avoid re-running the
  optimizer entirely: per paper script, the best-of-N warm ``submit``
  latency must be at least 10x below the cold (optimizing) latency.
* **Batched vs independent execution** — merging scripts that share a
  subexpression into one job must do measurably less work than running
  them independently: fewer rows extracted and a lower simulated
  makespan for the S1+S2 batch.

Raw numbers land in ``BENCH_service.json`` next to this file::

    pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.api import execute_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.service import QueryService
from repro.workloads.datagen import generate_for_catalog
from repro.workloads.paper_scripts import PAPER_SCRIPTS, make_exec_catalog

MACHINES = 4
WORKERS = 2
WARM_REPEATS = 20
SPEEDUP_FLOOR = 10.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_service.json"


def _config() -> OptimizerConfig:
    return OptimizerConfig(cost_params=CostParams(machines=MACHINES))


def test_warm_submit_is_10x_faster_than_cold(capsys):
    catalog = make_exec_catalog()
    service = QueryService(catalog, _config())

    rows = []
    for script in sorted(PAPER_SCRIPTS):
        text = PAPER_SCRIPTS[script]
        start = time.perf_counter()
        cold = service.submit(text)
        cold_seconds = time.perf_counter() - start
        assert not cold.cache_hit

        warm_seconds = None
        for _ in range(WARM_REPEATS):
            start = time.perf_counter()
            warm = service.submit(text)
            elapsed = time.perf_counter() - start
            assert warm.cache_hit
            if warm_seconds is None or elapsed < warm_seconds:
                warm_seconds = elapsed
        rows.append({
            "script": script,
            "cold_submit_seconds": cold_seconds,
            "warm_submit_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds,
        })
    # One optimization per script: every warm submit skipped the
    # optimizer, which is *why* the latency collapses.
    assert service.stats.optimizations == len(PAPER_SCRIPTS)

    report = {
        "benchmark": "service_plan_cache",
        "machines": MACHINES,
        "warm_repeats": WARM_REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "scripts": rows,
    }
    _merge_report(report)

    with capsys.disabled():
        print(f"\n=== Plan cache: cold vs warm submit "
              f"(best of {WARM_REPEATS} warm) ===")
        header = (f"{'script':<8}{'cold ms':>10}{'warm ms':>10}"
                  f"{'speedup':>9}")
        print(header)
        print("-" * len(header))
        for r in rows:
            print(f"{r['script']:<8}{r['cold_submit_seconds'] * 1e3:>10.2f}"
                  f"{r['warm_submit_seconds'] * 1e3:>10.3f}"
                  f"{r['speedup']:>8.0f}x")
        print(f"-> {OUT_PATH.name}")

    for r in rows:
        assert r["speedup"] >= SPEEDUP_FLOOR, (
            f"{r['script']}: warm submit only {r['speedup']:.1f}x faster "
            f"than cold (floor {SPEEDUP_FLOOR:.0f}x); the cache is not "
            "skipping the optimizer"
        )


def test_batched_execution_cheaper_than_independent(capsys):
    """S1+S2 share their first aggregation: one batched job must beat
    two independent runs on extracted rows and simulated makespan."""
    catalog = make_exec_catalog()
    files = generate_for_catalog(catalog, seed=11)
    texts = [PAPER_SCRIPTS["S1"], PAPER_SCRIPTS["S2"]]

    service = QueryService(catalog, _config())
    start = time.perf_counter()
    batch = service.execute_many(texts, workers=WORKERS, files=files,
                                 validate=False)
    batch_seconds = time.perf_counter() - start

    independent_extracted = 0
    independent_makespan = 0.0
    start = time.perf_counter()
    for text in texts:
        solo = execute_script(text, catalog, _config(), workers=WORKERS,
                              files=files, validate=False)
        independent_extracted += solo.metrics.rows_extracted
        independent_makespan += solo.metrics.simulated_makespan
    independent_seconds = time.perf_counter() - start

    shared = [v.name for v in batch.shared_vertices()]
    report = {
        "benchmark": "service_shared_batch",
        "machines": MACHINES,
        "workers": WORKERS,
        "scripts": ["S1", "S2"],
        "batched": {
            "wall_seconds": batch_seconds,
            "rows_extracted": batch.metrics.rows_extracted,
            "simulated_makespan": batch.metrics.simulated_makespan,
            "shared_vertices": shared,
        },
        "independent": {
            "wall_seconds": independent_seconds,
            "rows_extracted": independent_extracted,
            "simulated_makespan": independent_makespan,
        },
    }
    _merge_report(report)

    with capsys.disabled():
        print("\n=== Shared batch (S1+S2) vs independent runs ===")
        print(f"rows extracted: batched "
              f"{batch.metrics.rows_extracted:,} vs independent "
              f"{independent_extracted:,}")
        print(f"simulated makespan: batched "
              f"{batch.metrics.simulated_makespan:,.0f} vs independent "
              f"{independent_makespan:,.0f}")
        print(f"shared vertices executed once: {', '.join(shared)}")
        print(f"-> {OUT_PATH.name}")

    assert shared, "S1+S2 batch must contain cross-script shared vertices"
    assert batch.metrics.rows_extracted < independent_extracted
    assert batch.metrics.simulated_makespan < independent_makespan


def _merge_report(section: dict) -> None:
    """Accumulate both benchmark sections into one BENCH_service.json."""
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except ValueError:
            doc = {}
    doc[section["benchmark"]] = section
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
