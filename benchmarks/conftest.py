"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper; run

    pytest benchmarks/ --benchmark-only -s

to see both the timing numbers and the regenerated artifacts.
"""

from __future__ import annotations

import pytest

from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig


@pytest.fixture
def figure_config() -> OptimizerConfig:
    """The configuration used for all estimated-cost reproductions."""
    return OptimizerConfig(cost_params=CostParams(machines=25))
