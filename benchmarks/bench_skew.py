"""Skew and the cost-based choice of the shared layout.

The paper's phase 2 does not *always* pick the smallest reconciling
column set — it prices every enforceable layout.  This bench sweeps the
distinct-value count of column ``B`` in script S1: when ``B`` has enough
distinct values to keep every machine busy, the single-column ``{B}``
layout wins (both consumers aggregate in place); when ``B`` is too
low-cardinality, partitioning on it would collapse the effective
parallelism, and the rounds correctly fall back to a two-column layout
that serves one consumer directly and lets the other compensate.
"""

from __future__ import annotations

import pytest

from repro.api import optimize_script
from repro.optimizer.cost import CostParams
from repro.optimizer.engine import OptimizerConfig
from repro.plan.physical import PhysSpool
from repro.workloads.paper_scripts import S1, make_catalog

MACHINES = 25


def chosen_layout(ndv_b: int):
    catalog = make_catalog(
        ndv={"A": 250, "B": ndv_b, "C": 250, "D": 1_000_000}
    )
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    baseline = optimize_script(S1, catalog, config, exploit_cse=False)
    extended = optimize_script(S1, catalog, config, exploit_cse=True)
    spools = extended.plan.find_all(PhysSpool)
    layout = spools[0].props.partitioning if spools else None
    return layout, extended.cost / baseline.cost


def test_high_ndv_prefers_single_column():
    layout, ratio = chosen_layout(250)
    assert layout is not None
    assert layout.columns == frozenset({"B"})
    assert ratio < 0.7


def test_low_ndv_abandons_the_reconciling_column():
    """ndv(B)=2 on 25 machines: hash(B) would run on two machines; the
    rounds pick a layout that keeps the cluster busy instead."""
    layout, ratio = chosen_layout(2)
    assert layout is not None
    assert layout.columns != frozenset({"B"})
    assert len(layout.columns) >= 2
    assert ratio < 0.7  # sharing still pays — just with a different layout


def test_crossover_is_monotone_in_parallelism():
    """Once ndv(B) reaches the cluster size, {B} stays the choice."""
    for ndv_b in (MACHINES, 4 * MACHINES, 10 * MACHINES):
        layout, _ratio = chosen_layout(ndv_b)
        assert layout.columns == frozenset({"B"}), f"ndv(B)={ndv_b}"


def test_print_skew_sweep(capsys):
    with capsys.disabled():
        print("\n=== Shared-layout choice vs ndv(B) (25 machines) ===")
        print(f"{'ndv(B)':>8}{'chosen layout':>16}{'cost ratio':>12}")
        for ndv_b in (2, 5, 10, 25, 100, 250):
            layout, ratio = chosen_layout(ndv_b)
            print(f"{ndv_b:>8}{str(layout):>16}{ratio:>12.3f}")


@pytest.mark.parametrize("ndv_b", [2, 250], ids=["skewed", "uniform"])
def test_bench_skew_aware_optimization(benchmark, ndv_b):
    catalog = make_catalog(
        ndv={"A": 250, "B": ndv_b, "C": 250, "D": 1_000_000}
    )
    config = OptimizerConfig(cost_params=CostParams(machines=MACHINES))
    result = benchmark(lambda: optimize_script(S1, catalog, config))
    assert result.plan is not None
